package stats

import (
	"math"
	"sort"
)

// Sample collects raw observations for exact (nearest-rank) percentile
// computation, unlike Histogram which trades accuracy for fixed memory.
// The zero value is ready to use. Use it for bounded measurement windows
// (e.g. the scenario runner's per-point latency samples) where the exact
// p99 matters more than constant memory.
type Sample struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Observe adds one observation.
func (s *Sample) Observe(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Percentile returns the exact p-th percentile (0-100) by nearest rank,
// or 0 with no observations. The sample is sorted lazily on first use
// after new observations, so interleaving Observe and Percentile is
// correct but re-sorts.
func (s *Sample) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank <= 0 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 { return s.Percentile(100) }
