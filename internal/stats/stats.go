// Package stats provides small statistics helpers (counters, running
// aggregates, histograms, percentiles) used throughout the simulator to
// collect cycle-accurate measurements without perturbing behaviour.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: negative delta on Counter")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Running accumulates a stream of observations and exposes count, sum,
// mean, min and max. The zero value is ready to use.
type Running struct {
	count    int64
	sum      float64
	min, max float64
}

// Observe adds one observation.
func (r *Running) Observe(v float64) {
	if r.count == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.count++
	r.sum += v
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.count }

// Sum returns the sum of all observations.
func (r *Running) Sum() float64 { return r.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (r *Running) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// Min returns the smallest observation, or 0 with no observations.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with no observations.
func (r *Running) Max() float64 { return r.max }

// String renders a compact summary.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.0f max=%.0f", r.count, r.Mean(), r.min, r.max)
}

// Histogram is a fixed-bucket histogram over [0, BucketWidth*len(buckets)).
// Values beyond the last bucket land in the overflow bucket.
type Histogram struct {
	BucketWidth float64
	buckets     []int64
	overflow    int64
	all         Running
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{BucketWidth: width, buckets: make([]int64, n)}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.all.Observe(v)
	if v < 0 {
		v = 0
	}
	idx := int(v / h.BucketWidth)
	if idx >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[idx]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.all.Count() }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 { return h.all.Mean() }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.all.Max() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the count of observations beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Quantile returns an approximate q-quantile (0 <= q <= 1) assuming values
// are uniformly distributed within a bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	total := h.all.Count()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target <= 0 {
		target = 1
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return (float64(i) + 0.5) * h.BucketWidth
		}
	}
	return h.all.Max()
}

// String renders a sparkline-ish summary of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist(n=%d mean=%.1f p50=%.1f p99=%.1f max=%.0f)",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	return b.String()
}

// Percentile computes the p-th percentile (0-100) of a sample slice using
// nearest-rank. It does not modify the input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	cp := make([]float64, len(samples))
	copy(cp, samples)
	sort.Float64s(cp)
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank <= 0 {
		rank = 1
	}
	return cp[rank-1]
}
