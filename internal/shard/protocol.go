// Package shard distributes a scenario sweep across worker processes: a
// Coordinator deterministically partitions the sweep's canonical point
// order into N shards (scenario.ShardPoints), farms each shard to a
// worker — the same binary re-exec'd in -worker mode speaking
// length-prefixed JSON over stdio, or a remote worker over HTTP — and
// merges the rows back into canonical order (scenario.MergeShards).
//
// The determinism contract does the heavy lifting: every point is a pure
// function of (config, seed, CodeVersion), so a merged sharded run must
// be byte-identical to a single-process run, and the Merkle run ledger
// (scenario.MerkleRoot) verifies exactly that — each worker returns the
// sub-root of its rows (transport integrity), and the golden tests
// compare the merged root against the single-process root end to end.
//
// Failure handling follows the same contract: a worker that dies
// mid-shard (crash, pipe break, protocol desync) is replaced and its
// shard retried on a fresh worker — the rerun provably computes the same
// rows. An application error, by contrast, is fatal immediately: the
// simulator is deterministic, so retrying an invalid scenario would fail
// identically.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// ProtocolVersion gates the worker protocol; a version-mismatched worker
// rejects the request rather than returning silently different bytes.
const ProtocolVersion = 1

// MaxFrame bounds one protocol frame (64 MiB). The largest realistic
// frame — every row of a Full-fidelity sweep in one response — is well
// under 1 MiB; the bound exists so a desynchronized or hostile stream
// cannot make a reader allocate an absurd buffer.
const MaxFrame = 64 << 20

// Request asks a worker to execute one shard of a sweep.
type Request struct {
	Version int `json:"version"`
	// ID matches responses to requests on a stream.
	ID int64 `json:"id"`
	// Scenario is the validated scenario, re-marshaled by the coordinator
	// (a validated scenario round-trips through JSON unchanged; the Cache
	// field is runtime state and never serializes).
	Scenario json.RawMessage `json:"scenario"`
	// Shard and Shards select the partition: the worker runs the
	// canonical-order points with index % Shards == Shard.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Parallelism, when > 0, overrides the scenario's in-process sweep
	// concurrency inside the worker (shards x parallelism simulations run
	// at once across the fleet).
	Parallelism int `json:"parallelism,omitempty"`
	// CodeVersion pins simulation semantics: a worker running different
	// code must refuse rather than contribute rows from another universe.
	CodeVersion string `json:"code_version"`
}

// Response frame types.
const (
	// TypeProgress streams shard progress; zero or more per request.
	TypeProgress = "progress"
	// TypeResult is the terminal success frame carrying the shard's rows.
	TypeResult = "result"
	// TypeError is the terminal failure frame: the request failed in
	// application code (the worker process itself is still healthy).
	TypeError = "error"
)

// Response is one frame of a worker's reply stream: zero or more progress
// frames, then exactly one result or error frame.
type Response struct {
	ID   int64  `json:"id"`
	Type string `json:"type"`
	// Done/Total report shard progress (progress frames).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Rows are the shard's results in shard-local order (result frames).
	Rows []scenario.Row `json:"rows,omitempty"`
	// Cache reports the worker's result-cache counters for this shard, so
	// the coordinator can bubble them into its own Scope() counters.
	Cache *resultcache.Stats `json:"cache,omitempty"`
	// Root is the Merkle sub-root over Rows in slice order; the
	// coordinator recomputes it on receipt to verify transport integrity.
	Root string `json:"root,omitempty"`
	// Error describes the failure (error frames).
	Error string `json:"error,omitempty"`
}

// WriteFrame marshals v and writes it as one length-prefixed frame: a
// 4-byte big-endian byte count, then the JSON.
func WriteFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shard: marshaling frame: %w", err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds the %d-byte bound", len(data), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads one length-prefixed frame into v. A clean EOF between
// frames returns io.EOF verbatim (the stream ended); EOF inside a frame
// is an ErrUnexpectedEOF-wrapped error.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("shard: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds the %d-byte bound (stream desynchronized?)", n, MaxFrame)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("shard: reading %d-byte frame body: %w", n, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("shard: decoding frame: %w", err)
	}
	return nil
}

// RowsRoot computes the Merkle sub-root over a shard's rows in slice
// order: the run-ledger leaf codec applied to each row's Result, so a
// shard's sub-root is built from the exact leaves the merged ledger root
// is.
func RowsRoot(rows []scenario.Row) string {
	results := make([]scenario.Result, len(rows))
	for i, r := range rows {
		results[i] = r.Result
	}
	return scenario.MerkleRoot(results)
}
