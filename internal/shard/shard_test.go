package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// TestMain doubles as the worker entrypoint for the process-worker tests:
// the test binary re-exec'd with MEDEA_SHARD_WORKER=1 serves the frame
// protocol on stdio and exits, so worker processes need no separate
// binary to be built.
func TestMain(m *testing.M) {
	if os.Getenv("MEDEA_SHARD_WORKER") == "1" {
		cache := resultcache.New(resultcache.NewMemoryStore(0))
		if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, cache); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testProcFactory launches this test binary as a worker process.
func testProcFactory(t *testing.T) func(ctx context.Context) (Worker, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return ProcFactory(ProcSpec{Command: []string{exe}, Env: []string{"MEDEA_SHARD_WORKER=1"}})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: ProtocolVersion, ID: 7, Scenario: []byte(`{"workload":"noc-synthetic"}`), Shard: 2, Shards: 5, CodeVersion: "v1"}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp := &Response{ID: 7, Type: TypeResult, Done: 3, Total: 3, Root: "abc"}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}
	var gotReq Request
	if err := ReadFrame(&buf, &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq.ID != 7 || gotReq.Shard != 2 || gotReq.Shards != 5 || string(gotReq.Scenario) != `{"workload":"noc-synthetic"}` {
		t.Errorf("request did not round-trip: %+v", gotReq)
	}
	var gotResp Response
	if err := ReadFrame(&buf, &gotResp); err != nil {
		t.Fatal(err)
	}
	if gotResp.Type != TypeResult || gotResp.Done != 3 || gotResp.Root != "abc" {
		t.Errorf("response did not round-trip: %+v", gotResp)
	}
	// The stream is exhausted: the next read is a clean io.EOF, which the
	// worker loop treats as an orderly shutdown.
	if err := ReadFrame(&buf, &gotReq); err != io.EOF {
		t.Errorf("read past end = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversizedHeader(t *testing.T) {
	// A header claiming a frame larger than MaxFrame must be rejected
	// before any allocation, not trusted.
	buf := []byte{0xff, 0xff, 0xff, 0xff}
	var v Response
	err := ReadFrame(bytes.NewReader(buf), &v)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized header accepted: %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Response{ID: 1, Type: TypeResult}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	var v Response
	err := ReadFrame(bytes.NewReader(trunc), &v)
	if err == nil || err == io.EOF {
		t.Errorf("truncated frame read = %v, want a body error", err)
	}
}

func exampleScenarios(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios: %v (%v)", files, err)
	}
	return files
}

// TestShardedSweepGolden is the acceptance test for the shard layer:
// every shipped example scenario, run sharded at several shard counts,
// must render byte-identically to the single-process run in every output
// format and carry the same Merkle root. One in-memory cache is shared
// across the direct run and all shard counts, both to keep the test fast
// and to exercise the cache through the worker path.
func TestShardedSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example scenario at 5 shard counts")
	}
	for _, path := range exampleScenarios(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			cache := resultcache.New(resultcache.NewMemoryStore(0))
			direct, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			direct.Cache = cache.Scope()
			want, err := scenario.RunCtx(context.Background(), direct)
			if err != nil {
				t.Fatal(err)
			}
			wantRoot := scenario.MerkleRoot(want)
			for _, shards := range []int{1, 2, 4, 7} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					s, err := scenario.Load(path)
					if err != nil {
						t.Fatal(err)
					}
					co := &Coordinator{
						NewWorker: func(ctx context.Context) (Worker, error) {
							return StartPipe(ctx, cache), nil
						},
						Shards: shards,
					}
					got, stats, err := co.Run(context.Background(), s)
					if err != nil {
						t.Fatal(err)
					}
					if root := scenario.MerkleRoot(got); root != wantRoot {
						t.Errorf("merkle root %s, single-process run has %s", root, wantRoot)
					}
					if stats.Hits == 0 {
						t.Errorf("warm shared cache reported no hits: %+v", stats)
					}
					for _, format := range []string{scenario.FormatTable, scenario.FormatCSV, scenario.FormatJSON} {
						wantR, err := scenario.Render(want, format)
						if err != nil {
							t.Fatal(err)
						}
						gotR, err := scenario.Render(got, format)
						if err != nil {
							t.Fatal(err)
						}
						if gotR != wantR {
							t.Errorf("%s render diverges from the single-process run:\n--- sharded ---\n%s--- direct ---\n%s", format, gotR, wantR)
						}
					}
				})
			}
		})
	}
}

// TestProcWorkerSharded runs the smoke scenario over real worker
// processes (this test binary re-exec'd): the full exec + stdio-frame
// path, verified against an in-process run.
func TestProcWorkerSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	want := directSmokeRun(t)
	s := loadSmoke(t)
	co := &Coordinator{NewWorker: testProcFactory(t), Shards: 3, Logf: t.Logf}
	got, _, err := co.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
}

// TestWorkerCrashRetry kills exactly one worker mid-shard (the crash-once
// hook) and verifies the coordinator replaces it, reruns the shard, and
// still merges a byte-identical result.
func TestWorkerCrashRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	marker := filepath.Join(t.TempDir(), "crash-claimed")
	t.Setenv(EnvCrashOnce, marker)
	want := directSmokeRun(t)
	s := loadSmoke(t)
	co := &Coordinator{NewWorker: testProcFactory(t), Shards: 4, Workers: 2, Logf: t.Logf}
	got, _, err := co.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Errorf("no worker claimed the crash marker: %v", err)
	}
	assertSameResults(t, got, want)
}

// TestRetryBudgetExhausted: when every worker crashes on every request
// (the crash-always hook), the run must fail after the retry budget, not
// spin forever.
func TestRetryBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	t.Setenv(EnvCrashAlways, "1")
	s := loadSmoke(t)
	co := &Coordinator{NewWorker: testProcFactory(t), Shards: 2, Retries: 1, Logf: t.Logf}
	_, _, err := co.Run(context.Background(), s)
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Errorf("crash-always run = %v, want a giving-up error", err)
	}
}

// TestHTTPWorkerSharded shards the smoke scenario over the HTTP worker
// transport against an httptest server running the same Handler a
// -worker-listen process serves.
func TestHTTPWorkerSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the smoke sweep twice")
	}
	want := directSmokeRun(t)
	cache := resultcache.New(resultcache.NewMemoryStore(0))
	srv := httptest.NewServer(Handler(cache))
	defer srv.Close()
	s := loadSmoke(t)
	co := &Coordinator{NewWorker: HTTPFactory([]string{srv.URL}), Shards: 3, Logf: t.Logf}
	got, _, err := co.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, got, want)
}

// TestWorkerRejectsVersionSkew: a worker must refuse protocol- or
// code-version-skewed requests with a TypeError (fatal, no retry) rather
// than contribute rows computed by different semantics.
func TestWorkerRejectsVersionSkew(t *testing.T) {
	w := StartPipe(context.Background(), nil)
	defer w.Close()
	raw := []byte(`{"workload": "noc-synthetic", "noc": {"width": 2, "height": 2, "patterns": ["uniform"], "rates": [0.1], "measure_cycles": 200}}`)
	resp, err := w.Run(context.Background(), &Request{Scenario: raw, Shard: 0, Shards: 1, CodeVersion: "not-this-build"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeError || !strings.Contains(resp.Error, "code version") {
		t.Errorf("code-version skew answered %+v, want a TypeError naming the version", resp)
	}
}

// TestCoordinatorFailsFastOnBadScenario: an application error (here an
// unrunnable scenario reaching the worker) must abort the run without
// burning the retry budget.
func TestCoordinatorFailsFastOnBadScenario(t *testing.T) {
	s := loadSmoke(t)
	attempts := 0
	co := &Coordinator{
		NewWorker: func(ctx context.Context) (Worker, error) {
			attempts++
			return errorWorker{}, nil
		},
		Shards: 3,
	}
	_, _, err := co.Run(context.Background(), s)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("run = %v, want the worker's application error", err)
	}
	if attempts > 3 {
		t.Errorf("application failure was retried: %d workers started", attempts)
	}
}

type errorWorker struct{}

func (errorWorker) Run(ctx context.Context, req *Request, progress func(*Response)) (*Response, error) {
	return &Response{ID: req.ID, Type: TypeError, Error: "boom"}, nil
}
func (errorWorker) Close() error { return nil }

// TestCoordinatorCancellation: canceling the run context must end the run
// promptly with the context's error.
func TestCoordinatorCancellation(t *testing.T) {
	s := loadSmoke(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	co := &Coordinator{
		NewWorker: func(ctx context.Context) (Worker, error) { return StartPipe(ctx, nil), nil },
		Shards:    4,
	}
	_, _, err := co.Run(ctx, s)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
}

func loadSmoke(t *testing.T) *scenario.Scenario {
	t.Helper()
	s, err := scenario.Load("../../examples/scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func directSmokeRun(t *testing.T) []scenario.Result {
	t.Helper()
	want, err := scenario.RunCtx(context.Background(), loadSmoke(t))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertSameResults(t *testing.T, got, want []scenario.Result) {
	t.Helper()
	if root, wantRoot := scenario.MerkleRoot(got), scenario.MerkleRoot(want); root != wantRoot {
		t.Errorf("merkle root %s, single-process run has %s", root, wantRoot)
	}
	gotCSV, err := scenario.Render(got, scenario.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := scenario.Render(want, scenario.FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if gotCSV != wantCSV {
		t.Errorf("sharded CSV diverges:\n--- sharded ---\n%s--- direct ---\n%s", gotCSV, wantCSV)
	}
}
