package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// DefaultRetries is how many times a shard is retried on a replacement
// worker after transport failures before the run is abandoned.
const DefaultRetries = 2

// Coordinator fans one scenario sweep out over worker processes and
// merges the rows back into canonical order. The zero value is not
// runnable: NewWorker and Shards are required.
type Coordinator struct {
	// NewWorker launches one worker under the given context (canceled
	// when the run ends, which kills process workers). ProcFactory and
	// HTTPFactory build the common cases.
	NewWorker func(ctx context.Context) (Worker, error)
	// Shards is the number of partitions (>= 1).
	Shards int
	// Workers caps concurrently running workers; 0 means one per shard.
	Workers int
	// Retries is the per-shard transport-failure retry budget; < 0 means
	// none, 0 means DefaultRetries.
	Retries int
	// Parallelism overrides each worker's in-process sweep concurrency
	// (shards x parallelism concurrent simulations fleet-wide); 0 keeps
	// the scenario's own setting.
	Parallelism int
	// Logf, when non-nil, receives per-shard progress lines.
	Logf func(format string, args ...any)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Run executes the scenario across the fleet and returns the merged
// results in canonical order, plus the summed worker cache counters
// (bubble them into a local scope with resultcache.Cache.AddExternal).
// Each worker's rows are verified against its reported Merkle sub-root
// on receipt; the caller verifies the end-to-end claim by comparing
// scenario.MerkleRoot over the merged results with a single-process
// root (the golden tests do exactly that).
func (c *Coordinator) Run(ctx context.Context, s *scenario.Scenario) ([]scenario.Result, resultcache.Stats, error) {
	var zero resultcache.Stats
	if c.Shards < 1 {
		return nil, zero, fmt.Errorf("shard: shards must be >= 1, got %d", c.Shards)
	}
	if c.NewWorker == nil {
		return nil, zero, fmt.Errorf("shard: coordinator has no worker factory")
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, zero, fmt.Errorf("shard: marshaling scenario: %w", err)
	}
	retries := c.Retries
	switch {
	case retries == 0:
		retries = DefaultRetries
	case retries < 0:
		retries = 0
	}
	workers := c.Workers
	if workers <= 0 || workers > c.Shards {
		workers = c.Shards
	}

	// runCtx scopes the whole fleet: it is canceled when Run returns, so
	// worker processes never outlive the run, and fail() cancels it to
	// wake workers blocked on the queue or mid-exchange.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type task struct{ shard, attempt int }
	// Every shard exists in the queue at most once at any moment (it is
	// either queued, running, or done), so capacity shards x (retries+1)
	// means requeues can never block.
	queue := make(chan task, c.Shards*(retries+1))
	for i := 0; i < c.Shards; i++ {
		queue <- task{shard: i}
	}

	var (
		mu        sync.Mutex
		rows      []scenario.Row
		stats     resultcache.Stats
		completed int
		failure   error
	)
	fail := func(err error) {
		mu.Lock()
		if failure == nil {
			failure = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var w Worker
			defer func() {
				if w != nil {
					w.Close()
				}
			}()
			for {
				var t task
				select {
				case <-runCtx.Done():
					return
				case tt, ok := <-queue:
					if !ok {
						return
					}
					t = tt
				}
				if w == nil {
					nw, err := c.NewWorker(runCtx)
					if err != nil {
						fail(fmt.Errorf("shard: starting worker %d: %w", wi, err))
						return
					}
					w = nw
				}
				req := &Request{
					Scenario:    raw,
					Shard:       t.shard,
					Shards:      c.Shards,
					Parallelism: c.Parallelism,
					CodeVersion: resultcache.CodeVersion,
				}
				resp, err := w.Run(runCtx, req, func(p *Response) {
					c.logf("shard %d/%d: started on worker %d (%d points)", t.shard, c.Shards, wi, p.Total)
				})
				if err != nil {
					if runCtx.Err() != nil {
						return
					}
					mu.Lock()
					done := completed
					mu.Unlock()
					c.logf("shard %d/%d: attempt %d failed on worker %d (%d of %d shards completed): %v",
						t.shard, c.Shards, t.attempt+1, wi, done, c.Shards, err)
					// The worker is unusable; replace it and retry the
					// shard if budget remains.
					w.Close()
					w = nil
					if t.attempt >= retries {
						fail(fmt.Errorf("shard: shard %d failed %d times, giving up: %w", t.shard, t.attempt+1, err))
						return
					}
					queue <- task{shard: t.shard, attempt: t.attempt + 1}
					continue
				}
				if resp.Type == TypeError {
					// Application failure: deterministic, retrying would
					// fail identically.
					fail(fmt.Errorf("shard: shard %d: %s", t.shard, resp.Error))
					return
				}
				if got := RowsRoot(resp.Rows); got != resp.Root {
					fail(fmt.Errorf("shard: shard %d: transport root mismatch (worker sent %s, rows hash to %s)", t.shard, resp.Root, got))
					return
				}
				mu.Lock()
				rows = append(rows, resp.Rows...)
				if resp.Cache != nil {
					stats.Hits += resp.Cache.Hits
					stats.Misses += resp.Cache.Misses
					stats.Dedups += resp.Cache.Dedups
					stats.Computes += resp.Cache.Computes
				}
				completed++
				done := completed
				mu.Unlock()
				c.logf("shard %d/%d: merged %d rows (%d of %d shards complete)", t.shard, c.Shards, len(resp.Rows), done, c.Shards)
				if done == c.Shards {
					close(queue)
				}
			}
		}(wi)
	}
	wg.Wait()

	if failure != nil {
		return nil, zero, failure
	}
	if err := ctx.Err(); err != nil {
		return nil, zero, err
	}
	if completed != c.Shards {
		return nil, zero, fmt.Errorf("shard: only %d of %d shards completed", completed, c.Shards)
	}
	merged, err := scenario.MergeShards(s, rows)
	if err != nil {
		return nil, zero, err
	}
	return merged, stats, nil
}
