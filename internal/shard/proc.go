package shard

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// Worker executes shard requests. Run returning an error means the
// worker itself is unusable — it crashed, its pipe broke, its stream
// desynchronized — and the coordinator replaces it and retries the shard
// elsewhere. A TypeError Response, by contrast, is an application
// failure: the worker is healthy, the request can never succeed (the
// simulator is deterministic), and the coordinator fails fast.
type Worker interface {
	Run(ctx context.Context, req *Request, progress func(*Response)) (*Response, error)
	Close() error
}

// ProcSpec describes how to launch a local worker process.
type ProcSpec struct {
	// Command is the argv, typically the current binary re-exec'd in
	// -worker mode: {os.Executable(), "-worker", ...cache flags}.
	Command []string
	// Env entries are appended to the parent's environment.
	Env []string
}

// ProcWorker is a worker subprocess speaking the frame protocol on its
// stdin/stdout. The process runs under the coordinator's context
// (exec.CommandContext), so canceling the run kills every worker.
type ProcWorker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout *bufio.Reader
	nextID int64
}

// StartProc launches a worker process per spec. Worker stderr passes
// through to the parent's, so worker-side logs land in the run's log.
func StartProc(ctx context.Context, spec ProcSpec) (*ProcWorker, error) {
	if len(spec.Command) == 0 {
		return nil, fmt.Errorf("shard: empty worker command")
	}
	cmd := exec.CommandContext(ctx, spec.Command[0], spec.Command[1:]...)
	cmd.Env = append(os.Environ(), spec.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shard: starting worker %q: %w", spec.Command[0], err)
	}
	return &ProcWorker{cmd: cmd, stdin: stdin, stdout: bufio.NewReader(stdout)}, nil
}

// Run implements Worker.
func (p *ProcWorker) Run(ctx context.Context, req *Request, progress func(*Response)) (*Response, error) {
	p.nextID++
	req.ID = p.nextID
	return exchange(ctx, p.stdin, p.stdout, req, progress)
}

// Close shuts the worker down: closing stdin makes a healthy worker's
// serve loop exit cleanly; a wedged one is killed after a grace period.
func (p *ProcWorker) Close() error {
	p.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		p.cmd.Process.Kill()
		return <-done
	}
}

// ProcFactory returns a Coordinator.NewWorker that launches processes
// per spec.
func ProcFactory(spec ProcSpec) func(ctx context.Context) (Worker, error) {
	return func(ctx context.Context) (Worker, error) { return StartProc(ctx, spec) }
}
