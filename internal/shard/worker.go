package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/resultcache"
	"repro/internal/scenario"
)

// Crash-injection hooks for the retry path's tests and CI smoke: set
// EnvCrashOnce to a file path and exactly one worker process (the first
// to claim the path with O_EXCL) exits mid-request with status 3;
// EnvCrashAlways makes every worker exit on its first request, which is
// how the retry-budget-exhaustion path is exercised. Both are inert
// unless set.
const (
	EnvCrashOnce   = "MEDEA_SHARD_CRASH_ONCE"
	EnvCrashAlways = "MEDEA_SHARD_CRASH_ALWAYS"
)

// crashIfRequested implements the injection hooks; called after a request
// is read and before it executes, the window where a crash loses a whole
// claimed shard.
func crashIfRequested() {
	if os.Getenv(EnvCrashAlways) != "" {
		os.Exit(3)
	}
	marker := os.Getenv(EnvCrashOnce)
	if marker == "" {
		return
	}
	f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return // another worker claimed the crash
	}
	f.Close()
	os.Exit(3)
}

// ServeWorker runs the worker side of the protocol on a byte stream:
// read a Request frame, execute the shard through the full scenario
// stack (result cache scope, fast-forward, checkpoint/fork — everything
// a single-process run uses), stream progress, write the terminal
// Response, repeat until the stream closes. Application failures produce
// TypeError frames and the loop continues; only a broken stream or a
// canceled context ends it. A nil cache runs uncached; a non-nil one is
// scoped per request so its counters can be reported per shard.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, cache *resultcache.Cache) error {
	for {
		var req Request
		if err := ReadFrame(r, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		crashIfRequested()
		resp := handleRequest(ctx, &req, w, cache)
		if err := WriteFrame(w, resp); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// handleRequest executes one shard request, streaming progress frames to
// w, and returns the terminal frame (never nil).
func handleRequest(ctx context.Context, req *Request, w io.Writer, cache *resultcache.Cache) *Response {
	fail := func(format string, args ...any) *Response {
		return &Response{ID: req.ID, Type: TypeError, Error: fmt.Sprintf(format, args...)}
	}
	if req.Version != ProtocolVersion {
		return fail("protocol version %d, this worker speaks %d", req.Version, ProtocolVersion)
	}
	if req.CodeVersion != resultcache.CodeVersion {
		return fail("code version %q, this worker runs %q", req.CodeVersion, resultcache.CodeVersion)
	}
	s, err := scenario.Parse(req.Scenario)
	if err != nil {
		return fail("%v", err)
	}
	if req.Parallelism > 0 {
		s.Parallelism = req.Parallelism
	}
	scope := cache.Scope()
	s.Cache = scope

	// Best-effort progress: the shard's point count up front, so the
	// coordinator can log "%d points" per shard as workers start.
	total := len(scenario.ShardPoints(req.Shard, req.Shards, s.NumPoints()))
	_ = WriteFrame(w, &Response{ID: req.ID, Type: TypeProgress, Done: 0, Total: total})

	rows, err := scenario.RunShardCtx(ctx, s, req.Shard, req.Shards)
	if err != nil {
		return fail("%v", err)
	}
	stats := scope.Stats()
	return &Response{
		ID:    req.ID,
		Type:  TypeResult,
		Done:  len(rows),
		Total: total,
		Rows:  rows,
		Cache: &stats,
		Root:  RowsRoot(rows),
	}
}

// PipeWorker is an in-process Worker speaking the full frame protocol
// over io.Pipe pairs — the exec-free harness the golden tests drive, so
// protocol encode/decode is exercised without process spawn cost.
type PipeWorker struct {
	w      *io.PipeWriter
	r      *io.PipeReader
	done   chan error
	nextID int64
}

// StartPipe starts a ServeWorker goroutine wired to a PipeWorker.
func StartPipe(ctx context.Context, cache *resultcache.Cache) *PipeWorker {
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	p := &PipeWorker{w: reqW, r: respR, done: make(chan error, 1)}
	go func() {
		err := ServeWorker(ctx, reqR, respW, cache)
		respW.CloseWithError(err)
		p.done <- err
	}()
	return p
}

// Run implements Worker.
func (p *PipeWorker) Run(ctx context.Context, req *Request, progress func(*Response)) (*Response, error) {
	p.nextID++
	req.ID = p.nextID
	return exchange(ctx, p.w, p.r, req, progress)
}

// Close implements Worker. Both pipe ends are closed: the request end so
// an idle serve loop sees EOF, and the response end so a serve loop
// blocked writing a frame the coordinator abandoned mid-exchange (e.g.
// after cancellation) fails out instead of deadlocking the close.
func (p *PipeWorker) Close() error {
	p.w.Close()
	p.r.CloseWithError(errors.New("shard: worker closed"))
	return <-p.done
}

// exchange writes one request and reads frames to the terminal response,
// invoking progress for each progress frame. Shared by the pipe, process
// and HTTP workers.
func exchange(ctx context.Context, w io.Writer, r io.Reader, req *Request, progress func(*Response)) (*Response, error) {
	req.Version = ProtocolVersion
	if err := WriteFrame(w, req); err != nil {
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var resp Response
		if err := ReadFrame(r, &resp); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("shard: worker closed the stream mid-request (crashed?)")
			}
			return nil, err
		}
		if resp.ID != req.ID {
			return nil, fmt.Errorf("shard: response for request %d while waiting on %d (stream desynchronized)", resp.ID, req.ID)
		}
		switch resp.Type {
		case TypeProgress:
			if progress != nil {
				progress(&resp)
			}
		case TypeResult, TypeError:
			return &resp, nil
		default:
			return nil, fmt.Errorf("shard: unknown frame type %q", resp.Type)
		}
	}
}
