package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/resultcache"
)

// Handler serves the worker protocol over HTTP for remote workers
// (medea-scenarios -worker-listen): POST a JSON Request, receive the
// frame stream — progress frames flushed as they happen, then the
// terminal frame — as the response body. One request per HTTP exchange.
func Handler(cache *resultcache.Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a shard request", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrame+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > MaxFrame {
			http.Error(w, fmt.Sprintf("request exceeds the %d-byte bound", MaxFrame), http.StatusRequestEntityTooLarge)
			return
		}
		var req Request
		if err := ReadFrame(io.MultiReader(lenPrefix(len(body)), bytes.NewReader(body)), &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		crashIfRequested()
		w.Header().Set("Content-Type", "application/octet-stream")
		fw := &flushWriter{w: w}
		resp := handleRequest(r.Context(), &req, fw, cache)
		_ = WriteFrame(fw, resp)
	})
}

// lenPrefix renders a 4-byte big-endian frame header, so the HTTP body
// (bare JSON) can be fed through the same ReadFrame as the stdio path.
func lenPrefix(n int) io.Reader {
	return bytes.NewReader([]byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)})
}

// flushWriter flushes after every write so progress frames stream to the
// coordinator instead of buffering until the shard finishes.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// HTTPWorker runs shards on a remote worker over HTTP.
type HTTPWorker struct {
	// URL is the worker endpoint (the -worker-listen address).
	URL string
	// Client defaults to http.DefaultClient. No timeout is set here: a
	// Full-fidelity shard legitimately runs for minutes, and cancellation
	// flows through the request context.
	Client *http.Client

	nextID int64
}

// Run implements Worker: POST the request, stream the framed response.
func (h *HTTPWorker) Run(ctx context.Context, req *Request, progress func(*Response)) (*Response, error) {
	h.nextID++
	req.ID = h.nextID
	req.Version = ProtocolVersion
	var body bytes.Buffer
	if err := WriteFrame(&body, req); err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(body.Bytes()[4:]))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("shard: worker %s: %s: %s", h.URL, resp.Status, bytes.TrimSpace(msg))
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fr Response
		if err := ReadFrame(resp.Body, &fr); err != nil {
			return nil, fmt.Errorf("shard: worker %s: %w", h.URL, err)
		}
		if fr.ID != req.ID {
			return nil, fmt.Errorf("shard: worker %s: response for request %d while waiting on %d", h.URL, fr.ID, req.ID)
		}
		switch fr.Type {
		case TypeProgress:
			if progress != nil {
				progress(&fr)
			}
		case TypeResult, TypeError:
			return &fr, nil
		default:
			return nil, fmt.Errorf("shard: worker %s: unknown frame type %q", h.URL, fr.Type)
		}
	}
}

// Close implements Worker; HTTP workers hold no local resources.
func (h *HTTPWorker) Close() error { return nil }

// HTTPFactory returns a Coordinator.NewWorker that hands out the listed
// worker URLs round-robin.
func HTTPFactory(urls []string) func(ctx context.Context) (Worker, error) {
	var next atomic.Int64
	return func(ctx context.Context) (Worker, error) {
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard: no worker URLs")
		}
		i := int(next.Add(1)-1) % len(urls)
		return &HTTPWorker{URL: urls[i]}, nil
	}
}
