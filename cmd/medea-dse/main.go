// Command medea-dse runs the paper's full 168-point design-space
// exploration (cores 3..16 counting the MPMMU, caches 2..64 kB, write-back
// and write-through) for one grid size and emits the results as a table, a
// Pareto/kill-rule analysis and optionally CSV.
//
// Example:
//
//	medea-dse -n 60 -csv fig6.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dse"
	"repro/internal/jacobi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-dse: ")

	n := flag.Int("n", 60, "Jacobi grid edge (16, 30 or 60)")
	csvPath := flag.String("csv", "", "write raw sweep points to this CSV file")
	variant := flag.String("variant", "hybrid-full", "hybrid-full | hybrid-sync | pure-sm")
	flag.Parse()

	o := dse.DefaultOptions(*n)
	v, err := jacobi.ParseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	o.Variant = v

	log.Printf("sweeping %d configurations on a %dx%d grid (%v)...",
		len(o.Cores)*len(o.CachesKB)*len(o.Policies), *n, *n, o.Variant)
	points, err := dse.Sweep(o)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(dse.Fig6Table(points, fmt.Sprintf("Execution time (cycles/iteration), %dx%d array", *n, *n)))
	front := dse.ParetoFront(points)
	knee := dse.KillRuleKnee(front)
	fmt.Println(dse.ParetoTable(front, knee,
		fmt.Sprintf("Optimal speedup vs chip area (Pareto + kill rule), %dx%d array", *n, *n)))

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(dse.PointsCSV(points)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *csvPath)
	}
}
