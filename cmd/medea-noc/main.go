// Command medea-noc characterizes the bare network-on-chip: it sweeps the
// offered load for a chosen traffic pattern and prints latency, throughput
// and deflection statistics for the deflection-routed switches and,
// optionally, the buffered XY baseline. Output can be emitted as CSV for
// plotting. For multi-pattern or multi-seed sweeps use cmd/medea-scenarios
// with a scenario file instead.
//
// Example:
//
//	medea-noc -w 4 -h 4 -pattern transpose -xy -csv transpose.csv
//	medea-noc -pattern tornado -burst-on 25 -burst-off 75
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/noc"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-noc: ")

	w := flag.Int("w", 4, "torus width (>= 2)")
	h := flag.Int("h", 4, "torus height (>= 2)")
	pattern := flag.String("pattern", "uniform",
		"traffic pattern, by name or index: "+strings.Join(noc.PatternNames(), " | "))
	hotspot := flag.Int("hotspot", 0, "hotspot destination node (hotspot pattern only)")
	cycles := flag.Int64("cycles", 5000, "simulated cycles per load point")
	seed := flag.Int64("seed", 1, "traffic RNG seed (runs are deterministic per seed)")
	burstOn := flag.Float64("burst-on", 0, "mean burst length in cycles for on/off modulated sources (0 = steady injection)")
	burstOff := flag.Float64("burst-off", 0, "mean gap length in cycles between bursts (set with -burst-on)")
	withXY := flag.Bool("xy", false, "also run the buffered XY dimension-order baseline")
	csvPath := flag.String("csv", "", "write results as CSV to this file")
	loads := flag.String("loads", "0.05,0.1,0.2,0.3,0.4,0.5,0.6", "comma-separated offered loads (flits/node/cycle, each in (0, 1])")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: medea-noc [flags]\n\nSweeps offered load for one synthetic traffic pattern on a WxH folded\ntorus and reports latency, throughput and deflection statistics.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	topo, err := noc.NewTopology(*w, *h)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := noc.ParsePattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	if err := noc.ValidatePattern(pat, topo); err != nil {
		log.Fatal(err)
	}
	if *hotspot < 0 || *hotspot >= topo.NumNodes() {
		log.Fatalf("hotspot node %d outside the %dx%d torus (0..%d)",
			*hotspot, *w, *h, topo.NumNodes()-1)
	}
	var burst *noc.BurstConfig
	if *burstOn != 0 || *burstOff != 0 {
		burst = &noc.BurstConfig{MeanOn: *burstOn, MeanOff: *burstOff}
		if err := burst.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	var rates []float64
	for _, s := range strings.Split(*loads, ",") {
		var r float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &r); err != nil || r <= 0 || r > 1 {
			log.Fatalf("bad load %q", s)
		}
		rates = append(rates, r)
	}

	var rows []row
	for _, rate := range rates {
		r := measureDeflection(topo, trafficCfg(pat, *hotspot, rate, burst), *cycles, *seed)
		if *withXY {
			xl, xq, xt := measureXY(topo, trafficCfg(pat, *hotspot, rate, burst), *cycles, *seed)
			r.xyLatency, r.xyPeakQ, r.xyThroughput = xl, xq, xt
			r.hasXY = true
		}
		rows = append(rows, r)
	}

	var b strings.Builder
	desc := pat.String()
	if burst != nil {
		desc = fmt.Sprintf("bursty %s (on %g / off %g)", pat, burst.MeanOn, burst.MeanOff)
	}
	fmt.Fprintf(&b, "%dx%d folded torus, %s traffic, %d cycles/point\n", *w, *h, desc, *cycles)
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	head := "load\tthroughput\tlatency\tp-hops\tdeflections\t"
	if *withXY {
		head += "xy-throughput\txy-latency\txy-peakQ\t"
	}
	fmt.Fprintln(tw, head)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.1f\t%.1f\t%d\t", r.load, r.throughput, r.latency, r.hops, r.deflections)
		if r.hasXY {
			fmt.Fprintf(tw, "%.3f\t%.1f\t%d\t", r.xyThroughput, r.xyLatency, r.xyPeakQ)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Print(b.String())

	if *csvPath != "" {
		var c strings.Builder
		c.WriteString("load,throughput,latency,hops,deflections,xy_throughput,xy_latency,xy_peak_queue\n")
		for _, r := range rows {
			fmt.Fprintf(&c, "%g,%g,%g,%g,%d,%g,%g,%d\n",
				r.load, r.throughput, r.latency, r.hops, r.deflections,
				r.xyThroughput, r.xyLatency, r.xyPeakQ)
		}
		if err := os.WriteFile(*csvPath, []byte(c.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *csvPath)
	}
}

type row struct {
	load         float64
	throughput   float64 // delivered flits/node/cycle
	latency      float64
	hops         float64
	deflections  int64
	hasXY        bool
	xyThroughput float64
	xyLatency    float64
	xyPeakQ      int
}

func trafficCfg(pat noc.Pattern, hot int, rate float64, burst *noc.BurstConfig) noc.TrafficConfig {
	return noc.TrafficConfig{Pattern: pat, Rate: rate, HotspotNode: hot, Burst: burst}
}

func measureDeflection(topo noc.Topology, cfg noc.TrafficConfig, cycles, seed int64) row {
	e := sim.NewEngine()
	n := noc.NewNetwork(e, topo)
	attachTraffic(e, topo, cfg, seed, n.Attach)
	e.Run(cycles)
	return row{
		load:        cfg.Rate,
		throughput:  float64(n.Stats.Delivered.Value()) / float64(cycles) / float64(topo.NumNodes()),
		latency:     n.Stats.Latency.Mean(),
		hops:        n.Stats.Hops.Mean(),
		deflections: n.TotalDeflections(),
	}
}

func measureXY(topo noc.Topology, cfg noc.TrafficConfig, cycles, seed int64) (lat float64, peakQ int, thr float64) {
	e := sim.NewEngine()
	n := noc.NewXYNetwork(e, topo)
	attachTraffic(e, topo, cfg, seed, n.Attach)
	e.Run(cycles)
	return n.Stats.Latency.Mean(), n.PeakQueue(),
		float64(n.Stats.Delivered.Value()) / float64(cycles) / float64(topo.NumNodes())
}

func attachTraffic(e *sim.Engine, topo noc.Topology, cfg noc.TrafficConfig, seed int64, attach func(int, noc.LocalPort)) {
	for i := 0; i < topo.NumNodes(); i++ {
		tn := noc.NewTrafficNode(i, topo, cfg, seed)
		attach(i, tn)
		e.Register(sim.PhaseNode, tn)
	}
}
