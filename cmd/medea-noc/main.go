// Command medea-noc characterizes the bare network-on-chip: it sweeps the
// offered load for a chosen traffic pattern, router and topology and
// prints latency, throughput, deflection and buffer statistics;
// optionally the buffered XY baseline runs alongside for a direct
// comparison. Output can be emitted as CSV for plotting. For
// multi-pattern, multi-router, multi-topology or multi-seed sweeps use
// cmd/medea-scenarios with a scenario file instead.
//
// Example:
//
//	medea-noc -w 4 -h 4 -pattern transpose -xy -csv transpose.csv
//	medea-noc -router wormhole -pattern tornado -burst-on 25 -burst-off 75
//	medea-noc -router adaptive -loads 0.1,0.3,0.5
//	medea-noc -topo mesh -pattern uniform
//	medea-noc -topo cmesh -w 8 -h 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/noc"
	"repro/internal/trace"
)

// errUsage signals that the flag package already reported the problem and
// printed usage; main must not log it a second time.
var errUsage = errors.New("medea-noc: bad arguments")

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-noc: ")
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing the result table to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-noc", flag.ContinueOnError)
	w := fs.Int("w", 4, "endpoint grid width (>= 2; cmesh needs even and >= 4)")
	h := fs.Int("h", 4, "endpoint grid height (>= 2; cmesh needs even and >= 4)")
	pattern := fs.String("pattern", "uniform",
		"traffic pattern, by name or index: "+strings.Join(noc.PatternNames(), " | "))
	router := fs.String("router", "deflection",
		"router algorithm, by name or index: "+strings.Join(noc.RouterNames(), " | "))
	topoFlag := fs.String("topo", "torus",
		"topology, by name or index: "+strings.Join(noc.TopologyNames(), " | "))
	hotspot := fs.Int("hotspot", 0, "hotspot destination node (hotspot pattern only)")
	cycles := fs.Int64("cycles", 5000, "simulated cycles per load point")
	seed := fs.Int64("seed", 1, "traffic RNG seed (runs are deterministic per seed)")
	burstOn := fs.Float64("burst-on", 0, "mean burst length in cycles for on/off modulated sources (0 = steady injection)")
	burstOff := fs.Float64("burst-off", 0, "mean gap length in cycles between bursts (set with -burst-on)")
	withXY := fs.Bool("xy", false, "also run the buffered XY dimension-order baseline")
	csvPath := fs.String("csv", "", "write results as CSV to this file")
	record := fs.String("record", "", "record every injection to this trace file (single load, no -xy; replay with the scenario runner's trace workload)")
	loads := fs.String("loads", "0.05,0.1,0.2,0.3,0.4,0.5,0.6", "comma-separated offered loads (flits/node/cycle, each in (0, 1])")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: medea-noc [flags]\n\nSweeps offered load for one synthetic traffic pattern and router on a\nWxH fabric (folded torus, mesh or concentrated mesh) and reports\nlatency, throughput, deflection and buffer statistics.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -help: usage already printed, exit clean
		}
		return errUsage // parse error: flag already printed error + usage
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	// Topology and size validate together: the kind constrains the legal
	// grids (mesh rejects 1xN lines, cmesh rejects grids not divisible by
	// its 2x2 concentration tile), so a bad -topo/-w/-h combination is a
	// usage error before any cycle is simulated.
	tk, err := noc.ParseTopology(*topoFlag)
	if err != nil {
		return err
	}
	topo, err := noc.NewTopologyOfKind(tk, *w, *h)
	if err != nil {
		return err
	}
	pat, err := noc.ParsePattern(*pattern)
	if err != nil {
		return err
	}
	if err := noc.ValidatePattern(pat, topo); err != nil {
		return err
	}
	kind, err := noc.ParseRouter(*router)
	if err != nil {
		return err
	}
	if *hotspot < 0 || *hotspot >= topo.NumEndpoints() {
		return fmt.Errorf("hotspot node %d outside the %dx%d endpoint grid (0..%d)",
			*hotspot, *w, *h, topo.NumEndpoints()-1)
	}
	if *cycles <= 0 {
		return fmt.Errorf("-cycles must be > 0, got %d", *cycles)
	}
	var burst *noc.BurstConfig
	if *burstOn != 0 || *burstOff != 0 {
		burst = &noc.BurstConfig{MeanOn: *burstOn, MeanOff: *burstOff}
		if err := burst.Validate(); err != nil {
			return err
		}
	}
	rates, err := parseLoads(*loads)
	if err != nil {
		return err
	}

	// A trace captures exactly one run, so recording constrains the sweep
	// to a single load point and a single router.
	var tr *trace.Trace
	if *record != "" {
		if len(rates) != 1 {
			return fmt.Errorf("-record captures a single run: -loads lists %d loads, want exactly one", len(rates))
		}
		if *withXY {
			return fmt.Errorf("-record captures a single router's run: drop -xy and record the XY baseline separately with -router xy")
		}
		tr = trace.New(trace.Header{
			Width: *w, Height: *h,
			Topology: tk.String(), Router: kind.String(),
			Pattern: pat.String(), Rate: rates[0], Seed: *seed,
			Bursty:  burst != nil,
			Measure: *cycles,
		})
	}

	var rows []row
	for _, rate := range rates {
		cfg := trafficCfg(pat, *hotspot, rate, burst)
		if tr != nil {
			cfg.Record = tr
		}
		r := measureRouter(topo, kind, cfg, *cycles, *seed)
		if *withXY {
			x := measureRouter(topo, noc.RouterXY, trafficCfg(pat, *hotspot, rate, burst), *cycles, *seed)
			r.xyLatency, r.xyPeakBuf, r.xyThroughput = x.latency, x.peakBuf, x.throughput
			r.hasXY = true
		}
		rows = append(rows, r)
	}

	if tr != nil {
		if err := tr.Save(*record); err != nil {
			return err
		}
		log.Printf("recorded %d injection events to %s (sha256 %s)", len(tr.Events), *record, tr.Hash())
	}

	var b strings.Builder
	desc := pat.String()
	if burst != nil {
		desc = fmt.Sprintf("bursty %s (on %g / off %g)", pat, burst.MeanOn, burst.MeanOff)
	}
	fmt.Fprintf(&b, "%dx%d %s, %s traffic, %s router, %d cycles/point\n", *w, *h, topoDesc(topo), desc, kind, *cycles)
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	head := "load\tthroughput\tlatency\tp99\thops\tdeflections\tpeak-buf\t"
	if *withXY {
		head += "xy-throughput\txy-latency\txy-peak-buf\t"
	}
	fmt.Fprintln(tw, head)
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.1f\t%.0f\t%.1f\t%d\t%d\t",
			r.load, r.throughput, r.latency, r.p99, r.hops, r.deflections, r.peakBuf)
		if r.hasXY {
			fmt.Fprintf(tw, "%.3f\t%.1f\t%d\t", r.xyThroughput, r.xyLatency, r.xyPeakBuf)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprint(stdout, b.String())

	if *csvPath != "" {
		var c strings.Builder
		c.WriteString("load,router,topology,throughput,latency,p99,hops,deflections,peak_buffer,xy_throughput,xy_latency,xy_peak_buffer\n")
		for _, r := range rows {
			fmt.Fprintf(&c, "%g,%s,%s,%g,%g,%g,%g,%d,%d,%g,%g,%d\n",
				r.load, kind, tk, r.throughput, r.latency, r.p99, r.hops, r.deflections,
				r.peakBuf, r.xyThroughput, r.xyLatency, r.xyPeakBuf)
		}
		if err := os.WriteFile(*csvPath, []byte(c.String()), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", *csvPath)
	}
	return nil
}

// parseLoads parses and validates the -loads flag: every offered load must
// be a clean float in (0, 1] (a rate is a per-node injection probability;
// negative or >1 rates used to be accepted silently and simulate garbage).
func parseLoads(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q in -loads: %v", part, err)
		}
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("load %g in -loads outside (0, 1]: an offered load is a per-node injection probability per cycle", r)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-loads must list at least one offered load in (0, 1]")
	}
	return rates, nil
}

type row struct {
	load         float64
	throughput   float64 // delivered flits/node/cycle
	latency      float64
	p99          float64
	hops         float64
	deflections  int64
	peakBuf      int
	hasXY        bool
	xyThroughput float64
	xyLatency    float64
	xyPeakBuf    int
}

func trafficCfg(pat noc.Pattern, hot int, rate float64, burst *noc.BurstConfig) noc.TrafficConfig {
	return noc.TrafficConfig{Pattern: pat, Rate: rate, HotspotNode: hot, Burst: burst}
}

// topoDesc names the fabric in the table header, keeping the paper's
// "folded torus" phrasing for the default.
func topoDesc(topo noc.Topology) string {
	switch topo.Kind() {
	case noc.TopoTorus:
		return "folded torus"
	case noc.TopoCMesh:
		w, h := topo.Dims()
		return fmt.Sprintf("cmesh (%dx%d switches)", w, h)
	}
	return topo.Kind().String()
}

func measureRouter(topo noc.Topology, kind noc.RouterKind, cfg noc.TrafficConfig, cycles, seed int64) row {
	m := noc.Measure(topo, noc.MeasureConfig{
		Router: kind, Traffic: cfg, Measure: cycles, Seed: seed,
	})
	return row{
		load:        cfg.Rate,
		throughput:  m.Throughput,
		latency:     m.MeanLatency,
		p99:         m.P99Latency,
		hops:        m.MeanHops,
		deflections: m.Deflections,
		peakBuf:     m.PeakBuffer,
	}
}
