package main

import (
	"testing"

	"repro/internal/noc"
)

func TestParsePattern(t *testing.T) {
	cases := map[string]noc.Pattern{
		"uniform":   noc.Uniform,
		"transpose": noc.Transpose,
		"hotspot":   noc.Hotspot,
		"neighbor":  noc.Neighbor,
	}
	for in, want := range cases {
		got, err := parsePattern(in)
		if err != nil || got != want {
			t.Errorf("parsePattern(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePattern("x"); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestMeasureDeflectionProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	r := measureDeflection(topo, noc.Uniform, 0, 0.2, 2000, 7)
	if r.throughput <= 0 || r.throughput > 1 {
		t.Errorf("throughput %v out of range", r.throughput)
	}
	if r.latency <= 0 {
		t.Errorf("latency %v", r.latency)
	}
	// At 0.2 offered load the network is far from saturation: delivered
	// must track offered within ~20%.
	if r.throughput < 0.16 {
		t.Errorf("throughput %v far below offered 0.2", r.throughput)
	}
}

func TestMeasureXYProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	lat, peak, thr := measureXY(topo, noc.Uniform, 0, 0.2, 2000, 7)
	if lat <= 0 || thr <= 0 || peak < 1 {
		t.Errorf("bad xy row: lat=%v thr=%v peak=%d", lat, thr, peak)
	}
}
