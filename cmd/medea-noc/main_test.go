package main

import (
	"testing"

	"repro/internal/noc"
)

// TestPatternFlagAcceptsAllNames pins the CLI contract: every pattern the
// library defines resolves through the shared noc.ParsePattern (the old
// four-name local parser is gone).
func TestPatternFlagAcceptsAllNames(t *testing.T) {
	for _, name := range noc.PatternNames() {
		if _, err := noc.ParsePattern(name); err != nil {
			t.Errorf("ParsePattern(%q): %v", name, err)
		}
	}
	if _, err := noc.ParsePattern("x"); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestMeasureDeflectionProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	r := measureDeflection(topo, trafficCfg(noc.Uniform, 0, 0.2, nil), 2000, 7)
	if r.throughput <= 0 || r.throughput > 1 {
		t.Errorf("throughput %v out of range", r.throughput)
	}
	if r.latency <= 0 {
		t.Errorf("latency %v", r.latency)
	}
	// At 0.2 offered load the network is far from saturation: delivered
	// must track offered within ~20%.
	if r.throughput < 0.16 {
		t.Errorf("throughput %v far below offered 0.2", r.throughput)
	}
}

func TestMeasureDeflectionBursty(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	burst := &noc.BurstConfig{MeanOn: 25, MeanOff: 75}
	full := measureDeflection(topo, trafficCfg(noc.Uniform, 0, 0.2, nil), 4000, 7)
	gated := measureDeflection(topo, trafficCfg(noc.Uniform, 0, 0.2, burst), 4000, 7)
	ratio := gated.throughput / full.throughput
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("bursty/steady throughput ratio %.3f, want ~0.25", ratio)
	}
}

func TestMeasureXYProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	lat, peak, thr := measureXY(topo, trafficCfg(noc.Uniform, 0, 0.2, nil), 2000, 7)
	if lat <= 0 || thr <= 0 || peak < 1 {
		t.Errorf("bad xy row: lat=%v thr=%v peak=%d", lat, thr, peak)
	}
}
