package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/trace"
)

// TestPatternFlagAcceptsAllNames pins the CLI contract: every pattern the
// library defines resolves through the shared noc.ParsePattern (the old
// four-name local parser is gone).
func TestPatternFlagAcceptsAllNames(t *testing.T) {
	for _, name := range noc.PatternNames() {
		if _, err := noc.ParsePattern(name); err != nil {
			t.Errorf("ParsePattern(%q): %v", name, err)
		}
	}
	if _, err := noc.ParsePattern("x"); err == nil {
		t.Error("bad pattern accepted")
	}
}

// TestRouterFlagAcceptsAllNames does the same for the router axis.
func TestRouterFlagAcceptsAllNames(t *testing.T) {
	for _, name := range noc.RouterNames() {
		var out strings.Builder
		if err := run([]string{"-router", name, "-loads", "0.1", "-cycles", "200"}, &out); err != nil {
			t.Errorf("-router %s: %v", name, err)
		}
		if !strings.Contains(out.String(), name+" router") {
			t.Errorf("-router %s: header does not name the router:\n%s", name, out.String())
		}
	}
}

// TestRateValidation pins the -loads fix: negative, zero, >1 and
// non-numeric offered loads must be rejected with a usage error instead of
// silently simulating garbage.
func TestRateValidation(t *testing.T) {
	for _, bad := range []string{"-0.2", "0", "1.5", "0.2,2.0", "abc", "0.5x", "", "0.3,,0.4"} {
		var out strings.Builder
		err := run([]string{"-loads", bad, "-cycles", "100"}, &out)
		if err == nil {
			t.Errorf("-loads %q accepted; want a usage error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "load") {
			t.Errorf("-loads %q: error %q does not mention the load", bad, err)
		}
	}
	// The happy path still works, including whitespace.
	var out strings.Builder
	if err := run([]string{"-loads", " 0.05, 0.1 ", "-cycles", "100"}, &out); err != nil {
		t.Errorf("valid -loads rejected: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "1"},          // degenerate torus
		{"-pattern", "nope"}, // unknown pattern
		{"-router", "nope"},  // unknown router
		{"-hotspot", "99"},   // hotspot off the grid
		{"-cycles", "0"},     // empty measurement window
		{"-burst-on", "5"},   // burst-off missing (< 1 cycle)
		{"-pattern", "shuffle", "-w", "3", "-h", "3"}, // bit pattern needs pow2 nodes
		{"positional"}, // stray argument
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
}

// TestTopologyFlag pins the -topo contract: every defined topology runs
// at a size legal for all kinds, the header names the fabric, and
// invalid -topo/size combinations are usage errors, mirroring the -loads
// validation.
func TestTopologyFlag(t *testing.T) {
	for _, name := range noc.TopologyNames() {
		var out strings.Builder
		if err := run([]string{"-topo", name, "-w", "4", "-h", "4", "-loads", "0.1", "-cycles", "200"}, &out); err != nil {
			t.Errorf("-topo %s: %v", name, err)
			continue
		}
		if !strings.Contains(out.String(), name) {
			t.Errorf("-topo %s: header does not name the topology:\n%s", name, out.String())
		}
	}
	bad := [][]string{
		{"-topo", "nope"},                                          // unknown topology
		{"-topo", "mesh", "-w", "1", "-h", "8"},                    // 1xN mesh line
		{"-topo", "mesh", "-w", "8", "-h", "1"},                    // Nx1 mesh line
		{"-topo", "cmesh", "-w", "5", "-h", "4"},                   // width not divisible by the tile
		{"-topo", "cmesh", "-w", "4", "-h", "6.5"},                 // non-integer size
		{"-topo", "cmesh", "-w", "2", "-h", "2"},                   // switch grid would be 1x1
		{"-topo", "cmesh", "-hotspot", "70", "-w", "8", "-h", "8"}, // hotspot past the 64 endpoints
	}
	for _, args := range bad {
		var out strings.Builder
		if err := run(append(args, "-cycles", "100"), &out); err == nil {
			t.Errorf("args %v accepted; want a usage error", args)
		}
	}
	// cmesh addresses endpoints, not switches: hotspot 63 is the last
	// endpoint of an 8x8 grid even though there are only 16 switches.
	var out strings.Builder
	if err := run([]string{"-topo", "cmesh", "-w", "8", "-h", "8", "-hotspot", "63", "-pattern", "hotspot", "-loads", "0.05", "-cycles", "200"}, &out); err != nil {
		t.Errorf("cmesh hotspot on last endpoint rejected: %v", err)
	}
}

func TestMeasureRouterProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	r := measureRouter(topo, noc.RouterDeflection, trafficCfg(noc.Uniform, 0, 0.2, nil), 2000, 7)
	if r.throughput <= 0 || r.throughput > 1 {
		t.Errorf("throughput %v out of range", r.throughput)
	}
	if r.latency <= 0 {
		t.Errorf("latency %v", r.latency)
	}
	// At 0.2 offered load the network is far from saturation: delivered
	// must track offered within ~20%.
	if r.throughput < 0.16 {
		t.Errorf("throughput %v far below offered 0.2", r.throughput)
	}
	if r.peakBuf != 0 {
		t.Errorf("deflection router reported %d buffered flits", r.peakBuf)
	}
}

func TestMeasureRouterBursty(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	burst := &noc.BurstConfig{MeanOn: 25, MeanOff: 75}
	full := measureRouter(topo, noc.RouterDeflection, trafficCfg(noc.Uniform, 0, 0.2, nil), 4000, 7)
	gated := measureRouter(topo, noc.RouterDeflection, trafficCfg(noc.Uniform, 0, 0.2, burst), 4000, 7)
	ratio := gated.throughput / full.throughput
	if ratio < 0.15 || ratio > 0.40 {
		t.Errorf("bursty/steady throughput ratio %.3f, want ~0.25", ratio)
	}
}

func TestMeasureXYProducesSaneRow(t *testing.T) {
	topo, _ := noc.NewTopology(4, 4)
	r := measureRouter(topo, noc.RouterXY, trafficCfg(noc.Uniform, 0, 0.2, nil), 2000, 7)
	if r.latency <= 0 || r.throughput <= 0 || r.peakBuf < 1 {
		t.Errorf("bad xy row: lat=%v thr=%v peak=%d", r.latency, r.throughput, r.peakBuf)
	}
}

func TestCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out strings.Builder
	if err := run([]string{"-loads", "0.1", "-cycles", "300", "-router", "wormhole", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "load,router,") {
		t.Errorf("unexpected CSV header: %s", data)
	}
	if !strings.Contains(string(data), "wormhole") {
		t.Errorf("CSV does not name the router: %s", data)
	}
}

// TestRecordFlag: -record captures a single run to a decodable trace
// whose header carries the run's provenance, and the single-run
// constraints (one load, no -xy) are enforced.
func TestRecordFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	var out strings.Builder
	err := run([]string{"-pattern", "tornado", "-loads", "0.2", "-cycles", "400",
		"-seed", "9", "-record", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatalf("recorded trace does not decode: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("recorded trace holds no events")
	}
	h := tr.Header
	if h.Width != 4 || h.Height != 4 || h.Topology != "torus" ||
		h.Router != "deflection" || h.Pattern != "tornado" ||
		h.Rate != 0.2 || h.Seed != 9 || h.Measure != 400 {
		t.Errorf("header does not carry the run's provenance: %+v", h)
	}
	for _, args := range [][]string{
		{"-loads", "0.1,0.2", "-record", path},    // one load only
		{"-xy", "-loads", "0.1", "-record", path}, // one router only
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
}
