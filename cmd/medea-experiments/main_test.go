package main

import (
	"strings"
	"testing"
)

// TestKernelFigRuns drives the K-1 experiment through the CLI, filtered
// to the fast syncbench kernel so the test stays cheap, and checks both
// variants show up in the rendered table.
func TestKernelFigRuns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "kernel", "-workloads", "syncbench"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"K-1", "syncbench", "hybrid-full", "pure-sm", "summary"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("kernel table missing %q:\n%s", want, out.String())
		}
	}
}

// TestBarrierFigSharesKernelPath: -fig barrier is the kernel ablation
// restricted to syncbench, so its output carries the same schema.
func TestBarrierFigSharesKernelPath(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "barrier"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"K-1", "syncbench", "pure-sm"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("barrier table missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "jacobi\t") || strings.Contains(out.String(), "matmul") {
		t.Errorf("barrier table swept more than the syncbench kernel:\n%s", out.String())
	}
}

// TestHelpExitsClean: -h prints usage and returns nil (exit 0), like the
// other binaries.
func TestHelpExitsClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
}

// TestUsageErrors: invalid workload/variant combinations and misplaced
// flags must fail before any sweep runs.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"unknown fig", []string{"-fig", "42"}, "unknown -fig"},
		{"positional args", []string{"-fig", "kernel", "extra"}, "unexpected arguments"},
		{"workloads without kernel fig", []string{"-fig", "8", "-workloads", "matmul"}, "-fig kernel"},
		{"variants without kernel fig", []string{"-fig", "barrier", "-variants", "pure-sm"}, "-fig kernel"},
		{"unknown workload", []string{"-fig", "kernel", "-workloads", "noc-synthetic"}, "unknown kernel"},
		{"duplicate workload", []string{"-fig", "kernel", "-workloads", "matmul,matmul"}, "twice"},
		{"unknown variant", []string{"-fig", "kernel", "-variants", "mpi"}, "unknown variant"},
		{"syncbench hybrid-sync", []string{"-fig", "kernel", "-workloads", "syncbench", "-variants", "hybrid-sync"}, "hybrid-sync"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(c.args, &out)
			if err == nil {
				t.Fatalf("args %v accepted", c.args)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
