package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestMain doubles as the worker entrypoint for the sharded CLI tests:
// the coordinator's default worker command re-execs this test binary
// (os.Executable) with -worker, and MEDEA_WORKER_MAIN routes that
// invocation into the real CLI instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("MEDEA_WORKER_MAIN") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestShardedFig8MatchesSingleProcess: -fig 8 -shards N must render the
// exact same table as the single-process run — the figure path's half of
// the sharding golden (the scenario CLI's is in cmd/medea-scenarios).
func TestShardedFig8MatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig8-quick sweep twice, once across worker processes")
	}
	var direct strings.Builder
	if err := run([]string{"-fig", "8"}, &direct); err != nil {
		t.Fatal(err)
	}
	t.Setenv("MEDEA_WORKER_MAIN", "1")
	var sharded strings.Builder
	if err := run([]string{"-fig", "8", "-shards", "2"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if sharded.String() != direct.String() {
		t.Errorf("sharded Fig8 diverges:\n--- sharded ---\n%s--- direct ---\n%s", sharded.String(), direct.String())
	}
}

func TestShardsFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "kernel", "-shards", "2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-shards") {
		t.Errorf("-fig kernel -shards 2 = %v, want a -shards error", err)
	}
	if err := run([]string{"-fig", "8", "-shards", "-2"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-shards") {
		t.Errorf("-shards -2 = %v, want a flag error", err)
	}
}
