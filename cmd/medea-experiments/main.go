// Command medea-experiments regenerates the tables and figures of the
// paper's evaluation (Figures 6-9 plus the hybrid-vs-shared-memory prose
// analysis) and the beyond-paper kernel experiments. Absolute cycle
// counts differ from the authors' Xtensa testbed; the shapes — who wins,
// by what factor, where the knees fall — are the reproduction targets
// (see DESIGN.md's experiment index and REPRODUCING.md for the full
// figure/table -> command map).
//
// Every experiment runs through the same execution paths as the
// declarative scenario runner (dse.Sweep, dse.KernelSweep), so the
// hand-coded tables here and the JSON scenarios under examples/scenarios/
// cannot drift apart.
//
// Examples:
//
//	medea-experiments -fig all -full
//	medea-experiments -fig kernel -workloads jacobi,matmul -variants hybrid-full,pure-sm
//	medea-experiments -fig 8 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/dse"
	"repro/internal/jacobi"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-experiments: ")
	// Ctrl-C / SIGTERM cancel the sweeps cooperatively: dispatch stops,
	// in-flight simulations abort within a few thousand simulated cycles,
	// and the process exits promptly (profiles still flush via the defers
	// inside runCtx).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		var canceled *par.CanceledError
		if errors.As(err, &canceled) {
			log.Fatalf("interrupted: %d of %d points had completed; partial results discarded", canceled.Done, canceled.Total)
		}
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing tables to stdout. Errors
// propagate back here instead of os.Exit-ing in place so the profile
// defers still flush (a profile of a failing run is exactly the one worth
// keeping).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run under a cancelable context (main wires Ctrl-C into it).
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which experiment: 6 | 7 | 8 | 9 | hybrid | sync | barrier | kernel | all")
	full := fs.Bool("full", false, "run the paper's full parameter grid (slower)")
	workloads := fs.String("workloads", "", "-fig kernel only: comma-separated kernels to sweep (default all; see -fig kernel)")
	variants := fs.String("variants", "", "-fig kernel only: comma-separated programming models (default hybrid-full,pure-sm)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := fs.String("bench-json", "", "run the fig8-quick cache trajectory (off/cold/warm, byte-identity enforced) and write a BENCH_<date>.json perf snapshot to this path")
	benchForce := fs.Bool("bench-json-force", false, "overwrite an existing -bench-json snapshot instead of refusing")
	noFFwd := fs.Bool("no-ffwd", false, "disable idle fast-forward (tick every cycle; output is byte-identical either way)")
	parallelism := fs.Int("parallelism", 0, "max concurrent simulations per process (0 = GOMAXPROCS); with -shards, shards x parallelism simulations run fleet-wide")
	shards := fs.Int("shards", 0, "figs 6|7|8|9: split the sweep into this many shards run by worker processes and merge (0 = single-process; output is byte-identical either way)")
	workers := fs.Int("workers", 0, "max concurrently running shard workers (0 = one per shard)")
	workerCmd := fs.String("worker-cmd", "", "worker command for sharded runs, space-separated (default: this binary re-exec'd with -worker)")
	workerMode := fs.Bool("worker", false, "serve the shard worker protocol on stdin/stdout (started by a coordinator, not by hand)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-experiments [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Regenerates the paper's figures and the beyond-paper kernel ablation\n")
		fmt.Fprintf(fs.Output(), "(REPRODUCING.md maps every figure/table to its invocation).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -help: usage already printed, exit clean
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if (*workloads != "" || *variants != "") && *fig != "kernel" {
		return fmt.Errorf("-workloads/-variants only apply to -fig kernel (got -fig %s)", *fig)
	}
	if *noFFwd {
		sim.SetDefaultFastForward(false)
	}
	if *parallelism != 0 {
		dse.SetDefaultParallelism(*parallelism)
	}
	if *workerMode {
		return shard.ServeWorker(ctx, os.Stdin, stdout, nil)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if *shards > 0 {
		switch *fig {
		case "6", "7", "8", "9":
		default:
			return fmt.Errorf("-shards only applies to the sweep figures (-fig 6|7|8|9), got -fig %s", *fig)
		}
	}
	if *benchJSON != "" {
		return benchTrajectory(ctx, *benchJSON, *benchForce, stdout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	fid := dse.Quick
	if *full {
		fid = dse.Full
	}

	// figPoints runs a figure's sweep grid: single-process through
	// dse.SweepCtx (the exact Fig6Ctx/Fig8Ctx path), or sharded across
	// worker processes — the merged rows are byte-identical, so the
	// rendered figures are too.
	figPoints := func(name string, o dse.Options) ([]dse.Point, error) {
		if *shards == 0 {
			return dse.SweepCtx(ctx, o)
		}
		return runShardedSweep(ctx, name, o, *shards, *workers, *parallelism, *workerCmd, *noFFwd)
	}

	switch *fig {
	case "6":
		pts, err := figPoints("fig6", dse.Fig6Options(fid))
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig6Table(pts, dse.Fig6Title))
	case "7":
		pts, err := figPoints("fig7", dse.Fig6Options(fid))
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig7(pts))
	case "8":
		pts, err := figPoints("fig8", dse.Fig8Options(fid))
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig6Table(pts, dse.Fig8Title))
	case "9":
		pts, err := figPoints("fig9", dse.Fig8Options(fid))
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig9(pts))
	case "hybrid":
		t, _, err := dse.HybridComparisonCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "sync":
		t, _, err := dse.SmallCacheComparisonCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "barrier":
		// S-1: the synchronization primitives in isolation — the kernel
		// ablation restricted to the syncbench kernel, one execution path
		// with -fig kernel and the kernel-ablation scenario.
		o := dse.DefaultKernelAblationOptions()
		o.Kernels = []dse.Kernel{dse.KernelSyncbench}
		if fid == dse.Quick {
			o.Cores = []int{2, 4, 8}
		} else {
			o.Cores = []int{2, 4, 6, 8, 10, 12, 15}
		}
		points, err := dse.KernelAblationCtx(ctx, o)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.KernelAblationTable(o, points))
	case "kernel":
		// K-1: per-kernel speedup vs cores in both programming models.
		o := dse.DefaultKernelAblationOptions()
		if fid == dse.Full {
			o.Cores = dse.PaperCores()
		}
		kernels, err := parseKernels(*workloads)
		if err != nil {
			return err
		}
		if kernels != nil {
			o.Kernels = kernels
		}
		vars, err := parseVariants(*variants)
		if err != nil {
			return err
		}
		if vars != nil {
			o.Variants = vars
		}
		points, err := dse.KernelAblationCtx(ctx, o)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.KernelAblationTable(o, points))
	case "all":
		t, err := dse.AllExperimentsCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}

// sweepScenario expresses a figure's dse.Options as the equivalent
// declarative scenario, the unit the shard coordinator distributes. The
// two run the same execution path (scenario kernel workloads delegate to
// dse.SweepCtx), so the round-trip is byte-exact — the golden tests
// already hold the scenario and dse paths in lockstep.
func sweepScenario(name string, o dse.Options) (*scenario.Scenario, error) {
	pols := make([]string, len(o.Policies))
	for i, p := range o.Policies {
		pols[i] = p.String()
	}
	s := &scenario.Scenario{
		Name:     name,
		Workload: "jacobi",
		Kernel: &scenario.KernelConfig{
			N:        o.N,
			Variant:  o.Variant.String(),
			Cores:    o.Cores,
			CacheKB:  o.CachesKB,
			Policies: pols,
			Warmup:   o.Warmup,
			Measured: o.Measured,
		},
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sharded sweep: %w", err)
	}
	return s, nil
}

// runShardedSweep distributes one figure sweep across worker processes
// and returns the merged points in canonical order.
func runShardedSweep(ctx context.Context, name string, o dse.Options, shards, workers, parallelism int, workerCmd string, noFFwd bool) ([]dse.Point, error) {
	s, err := sweepScenario(name, o)
	if err != nil {
		return nil, err
	}
	var argv []string
	if workerCmd != "" {
		argv = strings.Fields(workerCmd)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = []string{exe, "-worker"}
		if noFFwd {
			argv = append(argv, "-no-ffwd")
		}
	}
	co := &shard.Coordinator{
		NewWorker:   shard.ProcFactory(shard.ProcSpec{Command: argv}),
		Shards:      shards,
		Workers:     workers,
		Parallelism: parallelism,
		Logf:        log.Printf,
	}
	results, _, err := co.Run(ctx, s)
	if err != nil {
		return nil, err
	}
	log.Printf("%s: merged %d shards; merkle root %s", name, shards, scenario.MerkleRoot(results))
	return scenario.DSEPoints(results), nil
}

// parseList resolves a comma-separated axis filter through the axis's
// canonical parser, rejecting duplicates; an empty flag keeps the
// experiment's default (nil).
func parseList[T comparable](flagName, s string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	seen := map[T]bool{}
	for _, name := range strings.Split(s, ",") {
		v, err := parse(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", flagName, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("%s: %v listed twice", flagName, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// parseKernels resolves the -workloads filter; empty means every kernel.
func parseKernels(s string) ([]dse.Kernel, error) {
	return parseList("-workloads", s, dse.ParseKernel)
}

// parseVariants resolves the -variants filter; empty keeps the default
// hybrid-full vs pure-sm comparison.
func parseVariants(s string) ([]jacobi.Variant, error) {
	return parseList("-variants", s, jacobi.ParseVariant)
}
