// Command medea-experiments regenerates the tables and figures of the
// paper's evaluation (Figures 6-9 plus the hybrid-vs-shared-memory prose
// analysis). Absolute cycle counts differ from the authors' Xtensa
// testbed; the shapes — who wins, by what factor, where the knees fall —
// are the reproduction targets (see EXPERIMENTS.md).
//
// Examples:
//
//	medea-experiments -fig all -full
//	medea-experiments -fig 7
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dse"
	"repro/internal/syncbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-experiments: ")

	fig := flag.String("fig", "all", "which experiment: 6 | 7 | 8 | 9 | hybrid | sync | barrier | all")
	full := flag.Bool("full", false, "run the paper's full parameter grid (slower)")
	flag.Parse()

	f := dse.Quick
	if *full {
		f = dse.Full
	}

	switch *fig {
	case "6":
		t, _, err := dse.Fig6(f)
		exitOn(err)
		fmt.Println(t)
	case "7":
		_, pts, err := dse.Fig6(f)
		exitOn(err)
		fmt.Println(dse.Fig7(pts))
	case "8":
		t, _, err := dse.Fig8(f)
		exitOn(err)
		fmt.Println(t)
	case "9":
		_, pts, err := dse.Fig8(f)
		exitOn(err)
		fmt.Println(dse.Fig9(pts))
	case "hybrid":
		t, _, err := dse.HybridComparison(f)
		exitOn(err)
		fmt.Println(t)
	case "sync":
		t, _, err := dse.SmallCacheComparison(f)
		exitOn(err)
		fmt.Println(t)
	case "barrier":
		cores := []int{2, 4, 8}
		if f == dse.Full {
			cores = []int{2, 4, 6, 8, 10, 12, 15}
		}
		t, err := syncbench.Table(cores, 20)
		exitOn(err)
		fmt.Println(t)
	case "all":
		t, err := dse.AllExperiments(f)
		exitOn(err)
		fmt.Println(t)
	default:
		log.Fatalf("unknown -fig %q", *fig)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
