// Command medea-experiments regenerates the tables and figures of the
// paper's evaluation (Figures 6-9 plus the hybrid-vs-shared-memory prose
// analysis) and the beyond-paper kernel experiments. Absolute cycle
// counts differ from the authors' Xtensa testbed; the shapes — who wins,
// by what factor, where the knees fall — are the reproduction targets
// (see DESIGN.md's experiment index and REPRODUCING.md for the full
// figure/table -> command map).
//
// Every experiment runs through the same execution paths as the
// declarative scenario runner (dse.Sweep, dse.KernelSweep), so the
// hand-coded tables here and the JSON scenarios under examples/scenarios/
// cannot drift apart.
//
// Examples:
//
//	medea-experiments -fig all -full
//	medea-experiments -fig kernel -workloads jacobi,matmul -variants hybrid-full,pure-sm
//	medea-experiments -fig 8 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/dse"
	"repro/internal/jacobi"
	"repro/internal/par"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-experiments: ")
	// Ctrl-C / SIGTERM cancel the sweeps cooperatively: dispatch stops,
	// in-flight simulations abort within a few thousand simulated cycles,
	// and the process exits promptly (profiles still flush via the defers
	// inside runCtx).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		var canceled *par.CanceledError
		if errors.As(err, &canceled) {
			log.Fatalf("interrupted: %d of %d points had completed; partial results discarded", canceled.Done, canceled.Total)
		}
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing tables to stdout. Errors
// propagate back here instead of os.Exit-ing in place so the profile
// defers still flush (a profile of a failing run is exactly the one worth
// keeping).
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run under a cancelable context (main wires Ctrl-C into it).
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-experiments", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which experiment: 6 | 7 | 8 | 9 | hybrid | sync | barrier | kernel | all")
	full := fs.Bool("full", false, "run the paper's full parameter grid (slower)")
	workloads := fs.String("workloads", "", "-fig kernel only: comma-separated kernels to sweep (default all; see -fig kernel)")
	variants := fs.String("variants", "", "-fig kernel only: comma-separated programming models (default hybrid-full,pure-sm)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	benchJSON := fs.String("bench-json", "", "run the fig8-quick cache trajectory (off/cold/warm, byte-identity enforced) and write a BENCH_<date>.json perf snapshot to this path")
	noFFwd := fs.Bool("no-ffwd", false, "disable idle fast-forward (tick every cycle; output is byte-identical either way)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-experiments [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Regenerates the paper's figures and the beyond-paper kernel ablation\n")
		fmt.Fprintf(fs.Output(), "(REPRODUCING.md maps every figure/table to its invocation).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -help: usage already printed, exit clean
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if (*workloads != "" || *variants != "") && *fig != "kernel" {
		return fmt.Errorf("-workloads/-variants only apply to -fig kernel (got -fig %s)", *fig)
	}
	if *noFFwd {
		sim.SetDefaultFastForward(false)
	}
	if *benchJSON != "" {
		return benchTrajectory(ctx, *benchJSON, stdout)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	fid := dse.Quick
	if *full {
		fid = dse.Full
	}

	switch *fig {
	case "6":
		t, _, err := dse.Fig6Ctx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "7":
		_, pts, err := dse.Fig6Ctx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig7(pts))
	case "8":
		t, _, err := dse.Fig8Ctx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "9":
		_, pts, err := dse.Fig8Ctx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.Fig9(pts))
	case "hybrid":
		t, _, err := dse.HybridComparisonCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "sync":
		t, _, err := dse.SmallCacheComparisonCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	case "barrier":
		// S-1: the synchronization primitives in isolation — the kernel
		// ablation restricted to the syncbench kernel, one execution path
		// with -fig kernel and the kernel-ablation scenario.
		o := dse.DefaultKernelAblationOptions()
		o.Kernels = []dse.Kernel{dse.KernelSyncbench}
		if fid == dse.Quick {
			o.Cores = []int{2, 4, 8}
		} else {
			o.Cores = []int{2, 4, 6, 8, 10, 12, 15}
		}
		points, err := dse.KernelAblationCtx(ctx, o)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.KernelAblationTable(o, points))
	case "kernel":
		// K-1: per-kernel speedup vs cores in both programming models.
		o := dse.DefaultKernelAblationOptions()
		if fid == dse.Full {
			o.Cores = dse.PaperCores()
		}
		kernels, err := parseKernels(*workloads)
		if err != nil {
			return err
		}
		if kernels != nil {
			o.Kernels = kernels
		}
		vars, err := parseVariants(*variants)
		if err != nil {
			return err
		}
		if vars != nil {
			o.Variants = vars
		}
		points, err := dse.KernelAblationCtx(ctx, o)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dse.KernelAblationTable(o, points))
	case "all":
		t, err := dse.AllExperimentsCtx(ctx, fid)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}

// parseList resolves a comma-separated axis filter through the axis's
// canonical parser, rejecting duplicates; an empty flag keeps the
// experiment's default (nil).
func parseList[T comparable](flagName, s string, parse func(string) (T, error)) ([]T, error) {
	if s == "" {
		return nil, nil
	}
	var out []T
	seen := map[T]bool{}
	for _, name := range strings.Split(s, ",") {
		v, err := parse(name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", flagName, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("%s: %v listed twice", flagName, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// parseKernels resolves the -workloads filter; empty means every kernel.
func parseKernels(s string) ([]dse.Kernel, error) {
	return parseList("-workloads", s, dse.ParseKernel)
}

// parseVariants resolves the -variants filter; empty keeps the default
// hybrid-full vs pure-sm comparison.
func parseVariants(s string) ([]jacobi.Variant, error) {
	return parseList("-variants", s, jacobi.ParseVariant)
}
