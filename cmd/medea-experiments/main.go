// Command medea-experiments regenerates the tables and figures of the
// paper's evaluation (Figures 6-9 plus the hybrid-vs-shared-memory prose
// analysis). Absolute cycle counts differ from the authors' Xtensa
// testbed; the shapes — who wins, by what factor, where the knees fall —
// are the reproduction targets (see DESIGN.md's experiment index).
//
// Examples:
//
//	medea-experiments -fig all -full
//	medea-experiments -fig 8 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/dse"
	"repro/internal/syncbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-experiments: ")

	fig := flag.String("fig", "all", "which experiment: 6 | 7 | 8 | 9 | hybrid | sync | barrier | all")
	full := flag.Bool("full", false, "run the paper's full parameter grid (slower)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Errors propagate back here instead of os.Exit-ing in place so the
	// profile defers inside run still flush (a profile of a failing run is
	// exactly the one worth keeping).
	if err := run(*fig, *full, *cpuprofile, *memprofile); err != nil {
		log.Fatal(err)
	}
}

func run(fig string, full bool, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	fid := dse.Quick
	if full {
		fid = dse.Full
	}

	switch fig {
	case "6":
		t, _, err := dse.Fig6(fid)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "7":
		_, pts, err := dse.Fig6(fid)
		if err != nil {
			return err
		}
		fmt.Println(dse.Fig7(pts))
	case "8":
		t, _, err := dse.Fig8(fid)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "9":
		_, pts, err := dse.Fig8(fid)
		if err != nil {
			return err
		}
		fmt.Println(dse.Fig9(pts))
	case "hybrid":
		t, _, err := dse.HybridComparison(fid)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "sync":
		t, _, err := dse.SmallCacheComparison(fid)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "barrier":
		cores := []int{2, 4, 8}
		if fid == dse.Full {
			cores = []int{2, 4, 6, 8, 10, 12, 15}
		}
		t, err := syncbench.Table(cores, 20)
		if err != nil {
			return err
		}
		fmt.Println(t)
	case "all":
		t, err := dse.AllExperiments(fid)
		if err != nil {
			return err
		}
		fmt.Println(t)
	default:
		return fmt.Errorf("unknown -fig %q", fig)
	}
	return nil
}
