package main

// The -bench-json mode: measure the reference fig8-quick sweep cache-off,
// cache-cold and cache-warm, prove the three byte-identical, and write
// one perfledger snapshot — a point on the repository's committed
// performance trajectory (BENCH_<date>.json).

import (
	"context"
	"fmt"
	"io"
	"log"
	"runtime"
	"time"

	"repro/internal/dse"
	"repro/internal/perfledger"
	"repro/internal/resultcache"
)

// benchTrajectory runs the reference trajectory and writes the snapshot
// to path. The reference sweep is fig8-quick (28 jacobi points, the same
// grid as examples/scenarios/fig8-quick.json and the golden tests).
func benchTrajectory(ctx context.Context, path string, stdout io.Writer) error {
	opts := dse.Fig8Options(dse.Quick)

	run := func(c *resultcache.Cache) (string, time.Duration, error) {
		o := opts
		o.Cache = c
		start := time.Now()
		pts, err := dse.SweepCtx(ctx, o)
		if err != nil {
			return "", 0, err
		}
		return dse.PointsCSV(pts), time.Since(start), nil
	}

	log.Printf("bench-json: fig8-quick cache-off run")
	offCSV, offDur, err := run(nil)
	if err != nil {
		return err
	}
	mem := resultcache.New(resultcache.NewMemoryStore(0))
	log.Printf("bench-json: fig8-quick mem-cache cold run")
	cold := mem.Scope()
	coldCSV, coldDur, err := run(cold)
	if err != nil {
		return err
	}
	log.Printf("bench-json: fig8-quick mem-cache warm rerun")
	warm := mem.Scope()
	warmCSV, warmDur, err := run(warm)
	if err != nil {
		return err
	}

	// The determinism contract, enforced before anything is recorded: all
	// three paths must render byte-identically.
	if coldCSV != offCSV {
		return fmt.Errorf("bench-json: cold-cache results differ from cache-off results")
	}
	if warmCSV != offCSV {
		return fmt.Errorf("bench-json: warm-cache results differ from cache-off results")
	}
	ws := warm.Stats()
	if ws.Computes != 0 {
		return fmt.Errorf("bench-json: warm rerun recomputed %d points", ws.Computes)
	}

	// The ledger root commits to the reference result rows (one CSV row
	// per leaf, header excluded): equal roots across snapshots mean the
	// reference results are still byte-identical.
	root := csvMerkleRoot(offCSV)
	points := float64(cold.Stats().Computes)
	speedup := float64(coldDur) / float64(warmDur)
	snap := &perfledger.Snapshot{
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		CodeVersion: resultcache.CodeVersion,
		Entries: []perfledger.Entry{
			{Name: "fig8-quick/cache-off", NsPerOp: float64(offDur.Nanoseconds()), Metrics: map[string]float64{"points": points}},
			{Name: "fig8-quick/mem-cold", NsPerOp: float64(coldDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "hit_rate": cold.Stats().HitRate()}},
			{Name: "fig8-quick/mem-warm", NsPerOp: float64(warmDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "hit_rate": ws.HitRate()}},
		},
		Cache: perfledger.CacheSummary{
			ColdNs:  coldDur.Nanoseconds(),
			WarmNs:  warmDur.Nanoseconds(),
			Speedup: speedup,
			HitRate: ws.HitRate(),
			Hits:    ws.Hits,
			Misses:  ws.Misses,
		},
		MerkleRoot: root,
	}
	if err := snap.Write(path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: cache-off %s, cold %s, warm %s (%.0fx; hit rate %.0f%%), merkle root %s\n",
		path, offDur.Round(time.Millisecond), coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond),
		speedup, 100*ws.HitRate(), root)
	if speedup < 5 {
		// The trajectory's reason to exist: a warm rerun must be far
		// cheaper than a cold one. Tripping this means the cache stopped
		// paying for itself.
		return fmt.Errorf("bench-json: warm rerun only %.1fx faster than cold (want >= 5x)", speedup)
	}
	return nil
}

// csvMerkleRoot builds the run-ledger root over a CSV rendering, one
// non-header row per leaf.
func csvMerkleRoot(csv string) string {
	var leaves [][]byte
	for i, line := range splitLines(csv) {
		if i == 0 || line == "" {
			continue
		}
		leaves = append(leaves, []byte(line))
	}
	return resultcache.NewTree(leaves).Root().String()
}

// splitLines splits on '\n' without the empty trailing element dance of
// strings.Split on a trailing newline being surprising at call sites.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
