package main

// The -bench-json mode: measure the reference fig8-quick sweep cache-off,
// cache-cold and cache-warm, prove the three byte-identical, measure a
// low-load NoC sweep with idle fast-forward off and on (byte-identity
// enforced again), and write one perfledger snapshot — a point on the
// repository's committed performance trajectory (BENCH_<date>.json).

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/dse"
	"repro/internal/noc"
	"repro/internal/perfledger"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
)

// benchTrajectory runs the reference trajectory and writes the snapshot
// to path (refusing to clobber an existing file unless force). The
// reference sweep is fig8-quick (28 jacobi points, the same grid as
// examples/scenarios/fig8-quick.json and the golden tests).
func benchTrajectory(ctx context.Context, path string, force bool, stdout io.Writer) error {
	opts := dse.Fig8Options(dse.Quick)

	run := func(c *resultcache.Cache) (string, time.Duration, error) {
		o := opts
		o.Cache = c
		start := time.Now()
		pts, err := dse.SweepCtx(ctx, o)
		if err != nil {
			return "", 0, err
		}
		return dse.PointsCSV(pts), time.Since(start), nil
	}

	log.Printf("bench-json: fig8-quick cache-off run")
	offCSV, offDur, err := run(nil)
	if err != nil {
		return err
	}
	mem := resultcache.New(resultcache.NewMemoryStore(0))
	log.Printf("bench-json: fig8-quick mem-cache cold run")
	cold := mem.Scope()
	coldCSV, coldDur, err := run(cold)
	if err != nil {
		return err
	}
	log.Printf("bench-json: fig8-quick mem-cache warm rerun")
	warm := mem.Scope()
	warmCSV, warmDur, err := run(warm)
	if err != nil {
		return err
	}

	// The determinism contract, enforced before anything is recorded: all
	// three paths must render byte-identically.
	if coldCSV != offCSV {
		return fmt.Errorf("bench-json: cold-cache results differ from cache-off results")
	}
	if warmCSV != offCSV {
		return fmt.Errorf("bench-json: warm-cache results differ from cache-off results")
	}
	ws := warm.Stats()
	if ws.Computes != 0 {
		return fmt.Errorf("bench-json: warm rerun recomputed %d points", ws.Computes)
	}

	log.Printf("bench-json: low-load noc sweep, fast-forward off vs on")
	ffOffDur, ffOnDur, ffSkipped, ffCycles, err := benchFastForward(ctx)
	if err != nil {
		return err
	}
	ffSpeedup := float64(ffOffDur) / float64(ffOnDur)

	log.Printf("bench-json: fig8-quick cold, single-process vs 4 shard workers (parallelism 1 each)")
	singleDur, shardedDur, err := benchSharded(ctx)
	if err != nil {
		return err
	}
	shardSpeedup := float64(singleDur) / float64(shardedDur)

	// The ledger root commits to the reference result rows (one CSV row
	// per leaf, header excluded): equal roots across snapshots mean the
	// reference results are still byte-identical.
	root := csvMerkleRoot(offCSV)
	points := float64(cold.Stats().Computes)
	speedup := float64(coldDur) / float64(warmDur)
	host, _ := os.Hostname()
	cpus := runtime.NumCPU()
	snap := &perfledger.Snapshot{
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		Host:        host,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CodeVersion: resultcache.CodeVersion,
		Entries: []perfledger.Entry{
			{Name: "fig8-quick/cache-off", NsPerOp: float64(offDur.Nanoseconds()), Metrics: map[string]float64{"points": points}},
			{Name: "fig8-quick/mem-cold", NsPerOp: float64(coldDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "hit_rate": cold.Stats().HitRate()}},
			{Name: "fig8-quick/mem-warm", NsPerOp: float64(warmDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "hit_rate": ws.HitRate()}},
			{Name: "noc-lowload/ffwd-off", NsPerOp: float64(ffOffDur.Nanoseconds()), Metrics: map[string]float64{"cycles": float64(ffCycles)}},
			{Name: "noc-lowload/ffwd-on", NsPerOp: float64(ffOnDur.Nanoseconds()), Metrics: map[string]float64{"cycles": float64(ffCycles), "cycles_skipped": float64(ffSkipped), "speedup": ffSpeedup}},
			{Name: "fig8-quick/single-1", NsPerOp: float64(singleDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "cpus": float64(cpus)}},
			{Name: "fig8-quick/sharded-4x1", NsPerOp: float64(shardedDur.Nanoseconds()), Metrics: map[string]float64{"points": points, "shards": 4, "speedup": shardSpeedup, "cpus": float64(cpus)}},
		},
		Cache: perfledger.CacheSummary{
			ColdNs:  coldDur.Nanoseconds(),
			WarmNs:  warmDur.Nanoseconds(),
			Speedup: speedup,
			HitRate: ws.HitRate(),
			Hits:    ws.Hits,
			Misses:  ws.Misses,
		},
		MerkleRoot: root,
	}
	write := snap.WriteNew
	if force {
		write = snap.Write
	}
	if err := write(path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: cache-off %s, cold %s, warm %s (%.0fx; hit rate %.0f%%), merkle root %s\n",
		path, offDur.Round(time.Millisecond), coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond),
		speedup, 100*ws.HitRate(), root)
	fmt.Fprintf(stdout, "fast-forward: low-load noc %s -> %s (%.1fx; %d of %d cycles skipped)\n",
		ffOffDur.Round(time.Millisecond), ffOnDur.Round(time.Millisecond), ffSpeedup, ffSkipped, ffCycles)
	fmt.Fprintf(stdout, "sharded: fig8-quick cold %s single -> %s on 4 workers (%.1fx on %d cpus)\n",
		singleDur.Round(time.Millisecond), shardedDur.Round(time.Millisecond), shardSpeedup, cpus)
	if speedup < 5 {
		// The trajectory's reason to exist: a warm rerun must be far
		// cheaper than a cold one. Tripping this means the cache stopped
		// paying for itself.
		return fmt.Errorf("bench-json: warm rerun only %.1fx faster than cold (want >= 5x)", speedup)
	}
	if ffSpeedup < 2 {
		// Fast-forward's acceptance bar: an almost-idle fabric must
		// simulate at least twice as fast with skipping on. Tripping this
		// means the cold path regressed (events over-vetoing, skip
		// machinery overhead) even though results are still identical.
		return fmt.Errorf("bench-json: fast-forward only %.1fx faster on the low-load sweep (want >= 2x)", ffSpeedup)
	}
	if cpus >= 2 && shardSpeedup < 1.8 {
		// Sharding's acceptance bar: with both sides pinned to one
		// simulation at a time per process, 4 worker processes on a
		// multi-core box must come in >= 1.8x faster — that is the
		// scale-out curve a multi-machine fleet would follow. On a 1-CPU
		// box the processes serialize and the bar is physically
		// unreachable, so only the byte-identity is enforced there.
		return fmt.Errorf("bench-json: 4 shard workers only %.1fx faster than single-process on %d cpus (want >= 1.8x)", shardSpeedup, cpus)
	}
	return nil
}

// benchSharded times a cold fig8-quick sweep single-process against 4
// shard worker processes, both capped at one simulation at a time per
// process so the comparison isolates the fan-out's scaling (the way a
// multi-machine fleet would scale) rather than re-measuring in-process
// goroutine parallelism. The two runs must render byte-identically and
// agree on the Merkle root before the timings count.
func benchSharded(ctx context.Context) (singleDur, shardedDur time.Duration, err error) {
	o := dse.Fig8Options(dse.Quick)
	s, err := sweepScenario("fig8-quick", o)
	if err != nil {
		return 0, 0, err
	}
	s.Parallelism = 1

	start := time.Now()
	single, err := scenario.RunCtx(ctx, s)
	if err != nil {
		return 0, 0, err
	}
	singleDur = time.Since(start)

	exe, err := os.Executable()
	if err != nil {
		return 0, 0, err
	}
	co := &shard.Coordinator{
		NewWorker: shard.ProcFactory(shard.ProcSpec{Command: []string{exe, "-worker"}}),
		Shards:    4,
		Workers:   4,
	}
	start = time.Now()
	merged, _, err := co.Run(ctx, s)
	if err != nil {
		return 0, 0, err
	}
	shardedDur = time.Since(start)

	singleCSV, err := scenario.Render(single, scenario.FormatCSV)
	if err != nil {
		return 0, 0, err
	}
	mergedCSV, err := scenario.Render(merged, scenario.FormatCSV)
	if err != nil {
		return 0, 0, err
	}
	if mergedCSV != singleCSV {
		return 0, 0, fmt.Errorf("bench-json: sharded results differ from single-process results")
	}
	if sr, mr := scenario.MerkleRoot(single), scenario.MerkleRoot(merged); sr != mr {
		return 0, 0, fmt.Errorf("bench-json: sharded merkle root %s != single-process root %s", mr, sr)
	}
	return singleDur, shardedDur, nil
}

// benchFastForward times the same low-load NoC measurement with idle
// fast-forward disabled and enabled, enforcing that the two agree on
// every measured figure before the timings count. At offered load 0.002
// the fabric idles for long stretches between injections — the regime
// fast-forward exists for (the fig8 kernel sweeps gain less; their
// fabric is rarely quiet).
func benchFastForward(ctx context.Context) (offDur, onDur time.Duration, skipped, cycles int64, err error) {
	defer sim.SetDefaultFastForward(sim.DefaultFastForward())
	topo, err := noc.NewTopology(4, 4)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	mc := noc.MeasureConfig{
		Router:  noc.RouterDeflection,
		Traffic: noc.TrafficConfig{Pattern: noc.Uniform, Rate: 0.002},
		Warmup:  1_000,
		Measure: 300_000,
	}
	seeds := []int64{1, 2, 3}

	run := func(ffwd bool) (time.Duration, []noc.Measurement, int64, error) {
		sim.SetDefaultFastForward(ffwd)
		var total int64
		out := make([]noc.Measurement, 0, len(seeds))
		start := time.Now()
		for _, seed := range seeds {
			smc := mc
			smc.Seed = seed
			m, err := noc.MeasureCtx(ctx, topo, smc)
			if err != nil {
				return 0, nil, 0, err
			}
			total += m.CyclesSkipped
			m.CyclesSkipped = 0
			out = append(out, m)
		}
		return time.Since(start), out, total, nil
	}

	offDur, offMs, offSkipped, err := run(false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	onDur, onMs, skipped, err := run(true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if offSkipped != 0 {
		return 0, 0, 0, 0, fmt.Errorf("bench-json: %d cycles skipped with fast-forward disabled", offSkipped)
	}
	for i := range offMs {
		if offMs[i] != onMs[i] {
			return 0, 0, 0, 0, fmt.Errorf("bench-json: fast-forward changed seed %d results:\n  on:  %+v\n  off: %+v",
				seeds[i], onMs[i], offMs[i])
		}
	}
	return offDur, onDur, skipped, mc.Measure * int64(len(seeds)), nil
}

// csvMerkleRoot builds the run-ledger root over a CSV rendering, one
// non-header row per leaf.
func csvMerkleRoot(csv string) string {
	var leaves [][]byte
	for i, line := range splitLines(csv) {
		if i == 0 || line == "" {
			continue
		}
		leaves = append(leaves, []byte(line))
	}
	return resultcache.NewTree(leaves).Root().String()
}

// splitLines splits on '\n' without the empty trailing element dance of
// strings.Split on a trailing newline being surprising at call sites.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
