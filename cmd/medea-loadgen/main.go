// Command medea-loadgen drives a running medea-serve daemon: it submits
// scenario jobs closed-loop (a fixed worker pool, each waiting for its
// job to finish before submitting the next) or open-loop (a fixed
// submission rate regardless of completions), measures submit-to-terminal
// latency, and counts every response class — including the 429
// backpressure rejections the daemon's bounded queue is supposed to emit
// under overload.
//
// With -chaos it mixes hostile traffic into the stream — malformed JSON,
// oversized bodies, mid-flight client disconnects — to exercise the
// daemon's input hardening; the final health check fails the run if the
// daemon stopped serving.
//
// With -once it submits a single job, waits for it, and prints the
// rendered result to stdout. CI uses this to assert the serve path is
// byte-identical to cmd/medea-scenarios for the same scenario file.
//
// Examples:
//
//	medea-loadgen -addr 127.0.0.1:8080 -scenario examples/scenarios/smoke.json -n 20 -concurrency 4
//	medea-loadgen -addr 127.0.0.1:8080 -scenario examples/scenarios/smoke.json -rate 50 -n 200 -chaos
//	medea-loadgen -addr 127.0.0.1:8080 -scenario examples/scenarios/fig8-quick.json -once -format table
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-loadgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "medea-serve address (host:port)")
	scenarioPath := fs.String("scenario", "", "scenario JSON file to submit (required)")
	n := fs.Int("n", 20, "total submissions")
	concurrency := fs.Int("concurrency", 4, "closed-loop workers (ignored when -rate is set)")
	rate := fs.Float64("rate", 0, "open-loop submissions per second (0 = closed loop)")
	chaos := fs.Bool("chaos", false, "mix in malformed JSON, oversized bodies and mid-flight disconnects")
	seed := fs.Int64("seed", 1, "chaos mix seed (deterministic per seed)")
	once := fs.Bool("once", false, "submit one job, wait, print its rendered result to stdout")
	format := fs.String("format", "", "-once result format: table | csv | json (default: the scenario's own)")
	jobWait := fs.Duration("job-wait", 10*time.Minute, "how long to wait for any one job to reach a terminal state")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-loadgen -scenario file.json [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Load-generates against a medea-serve daemon (closed or open loop,\n")
		fmt.Fprintf(fs.Output(), "optional chaos traffic), or with -once runs one job end to end.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *scenarioPath == "" {
		fs.Usage()
		return fmt.Errorf("-scenario is required")
	}
	body, err := os.ReadFile(*scenarioPath)
	if err != nil {
		return err
	}
	c := &client{
		base:    "http://" + *addr,
		hc:      &http.Client{Timeout: 30 * time.Second},
		jobWait: *jobWait,
	}

	if *once {
		return runOnce(c, body, *format, stdout)
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}

	m := &metrics{}
	start := time.Now()
	if *rate > 0 {
		openLoop(c, body, *n, *rate, *chaos, *seed, m)
	} else {
		closedLoop(c, body, *n, max(1, *concurrency), *chaos, *seed, m)
	}
	elapsed := time.Since(start)

	if err := c.health(); err != nil {
		return fmt.Errorf("daemon unhealthy after load: %w", err)
	}
	m.report(stdout, elapsed)
	return nil
}

// runOnce submits the scenario, waits for the job, and prints the
// rendered result — the serve-path equivalent of one medea-scenarios
// invocation. The daemon's cache report for the job (hit counts, Merkle
// ledger root) goes to stderr, so scripts can assert hit-on-resubmit
// while stdout stays byte-identical to the CLI's rendering.
func runOnce(c *client, body []byte, format string, stdout io.Writer) error {
	id, code, err := c.submit(bytes.NewReader(body))
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit rejected with status %d", code)
	}
	state, err := c.waitTerminal(id)
	if err != nil {
		return err
	}
	if state != "done" {
		st, _ := c.statusBody(id)
		return fmt.Errorf("job %s ended %s: %s", id, state, st)
	}
	if st, err := c.status(id); err == nil {
		if st.Cache != nil {
			hit := "cache-hit=false"
			if st.Cache.Hits > 0 && st.Cache.Computes == 0 {
				hit = "cache-hit=true"
			}
			log.Printf("job %s: %s hits=%d misses=%d computes=%d", id, hit, st.Cache.Hits, st.Cache.Misses, st.Cache.Computes)
		}
		if st.MerkleRoot != "" {
			log.Printf("job %s: merkle-root=%s", id, st.MerkleRoot)
		}
	}
	out, err := c.result(id, format)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, out)
	return err
}

// closedLoop runs workers that each submit, wait for the job to finish,
// and repeat, until n submissions have been made in total.
func closedLoop(c *client, body []byte, n, workers int, chaos bool, seed int64, m *metrics) {
	next := make(chan int64) // per-submission chaos seed
	go func() {
		for i := 0; i < n; i++ {
			next <- seed + int64(i)
		}
		close(next)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				oneRequest(c, body, chaos, s, m, true)
			}
		}()
	}
	wg.Wait()
}

// openLoop fires n submissions at the given rate without waiting for
// completions (each in-flight request still records its response class).
// Submission i fires at the absolute slot start + i*interval rather than
// off a relative ticker: a ticker re-arms from whenever the loop got
// around to reading it, so scheduling jitter and slow stretches compound
// into an offered load silently below -rate. With absolute slots a late
// submission fires immediately and the schedule catches back up. The
// achieved rate is reported so drift, if any, is visible instead of
// assumed away.
func openLoop(c *client, body []byte, n int, rate float64, chaos bool, seed int64, m *metrics) {
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			oneRequest(c, body, chaos, s, m, false)
		}(seed + int64(i))
	}
	// Span covers first to last submission; in-flight waits don't count
	// against the offered rate.
	span := time.Since(start)
	wg.Wait()
	if n > 1 && span > 0 {
		// n submissions span n-1 intervals, so the achieved rate over the
		// submission window is (n-1)/span.
		log.Printf("open loop: offered %.1f req/s, achieved %.1f req/s over %d submissions",
			rate, float64(n-1)/span.Seconds(), n)
	}
}

// oneRequest performs one submission — possibly a chaos mutation — and,
// in closed-loop mode, waits for the accepted job to reach a terminal
// state, recording submit-to-terminal latency.
func oneRequest(c *client, body []byte, chaos bool, seed int64, m *metrics, wait bool) {
	kind := chaosNone
	if chaos {
		// Deterministic per-submission mix: 30% hostile, evenly split.
		switch rand.New(rand.NewSource(seed)).Intn(10) {
		case 0:
			kind = chaosMalformed
		case 1:
			kind = chaosOversized
		case 2:
			kind = chaosDisconnect
		}
	}
	start := time.Now()
	id, code, err := c.submitChaos(body, kind)
	if kind != chaosNone {
		// Hostile traffic must be rejected (or the connection dies on the
		// disconnect case); an accepted chaos job would be a server bug.
		m.count(func(s *counts) {
			s.chaosSent++
			if code == http.StatusAccepted {
				s.chaosAccepted++
			}
		})
		return
	}
	switch {
	case err != nil:
		m.count(func(s *counts) { s.transportErrs++ })
	case code == http.StatusAccepted:
		m.count(func(s *counts) { s.accepted++ })
	case code == http.StatusTooManyRequests:
		m.count(func(s *counts) { s.backpressured++ })
	default:
		m.count(func(s *counts) { s.rejected++ })
	}
	if !wait || err != nil || code != http.StatusAccepted {
		return
	}
	state, err := c.waitTerminal(id)
	lat := time.Since(start)
	m.count(func(s *counts) {
		switch {
		case err != nil:
			s.waitErrs++
		case state == "done":
			s.done++
			s.latency.Observe(lat.Seconds())
		case state == "canceled":
			s.canceled++
		default:
			s.failed++
		}
	})
}

// ---- chaos client -------------------------------------------------------

type chaosKind int

const (
	chaosNone chaosKind = iota
	chaosMalformed
	chaosOversized
	chaosDisconnect
)

// brokenReader feeds a few bytes then fails, aborting the request
// mid-flight — the client half of a dropped connection.
type brokenReader struct{ sent bool }

func (b *brokenReader) Read(p []byte) (int, error) {
	if !b.sent {
		b.sent = true
		return copy(p, []byte(`{"name": "doomed`)), nil
	}
	return 0, errors.New("chaos: client hung up")
}

func (c *client) submitChaos(body []byte, kind chaosKind) (string, int, error) {
	switch kind {
	case chaosMalformed:
		return c.submit(strings.NewReader(`{"name": "broken", "workload":`))
	case chaosOversized:
		// Comfortably past the daemon's default 1 MiB body cap.
		return c.submit(bytes.NewReader(make([]byte, 2<<20)))
	case chaosDisconnect:
		return c.submit(&brokenReader{})
	default:
		return c.submit(bytes.NewReader(body))
	}
}

// ---- HTTP client --------------------------------------------------------

type client struct {
	base    string
	hc      *http.Client
	jobWait time.Duration
}

// submit POSTs one scenario body; on 202 it returns the new job id.
func (c *client) submit(body io.Reader) (string, int, error) {
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", body)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return "", resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st.ID, resp.StatusCode, nil
}

// jobStatus mirrors the status-endpoint fields -once reports on.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cache *struct {
		Hits     uint64 `json:"hits"`
		Misses   uint64 `json:"misses"`
		Dedups   uint64 `json:"dedups"`
		Computes uint64 `json:"computes"`
	} `json:"cache"`
	MerkleRoot string `json:"merkle_root"`
}

// status fetches one job's full status snapshot.
func (c *client) status(id string) (jobStatus, error) {
	var st jobStatus
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, fmt.Errorf("status fetch failed with %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// waitTerminal polls the job until it reaches a terminal state.
func (c *client) waitTerminal(id string) (string, error) {
	deadline := time.Now().Add(c.jobWait)
	for {
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st.State, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s still %s after %s", id, st.State, c.jobWait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (c *client) result(id, format string) (string, error) {
	url := c.base + "/v1/jobs/" + id + "/result"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := c.hc.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("result fetch failed with status %d: %s", resp.StatusCode, strings.TrimSpace(string(out)))
	}
	return string(out), nil
}

func (c *client) statusBody(id string) (string, error) {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(out)), err
}

func (c *client) health() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// ---- metrics ------------------------------------------------------------

type counts struct {
	accepted, backpressured, rejected int
	transportErrs, waitErrs           int
	done, failed, canceled            int
	chaosSent, chaosAccepted          int
	latency                           stats.Sample
}

type metrics struct {
	mu sync.Mutex
	c  counts
}

func (m *metrics) count(fn func(*counts)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(&m.c)
}

func (m *metrics) report(w io.Writer, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.c
	fmt.Fprintf(w, "elapsed %.2fs\n", elapsed.Seconds())
	fmt.Fprintf(w, "accepted %d  backpressured(429) %d  rejected %d  transport-errors %d\n",
		c.accepted, c.backpressured, c.rejected, c.transportErrs)
	if c.done+c.failed+c.canceled+c.waitErrs > 0 {
		fmt.Fprintf(w, "done %d  failed %d  canceled %d  wait-errors %d\n",
			c.done, c.failed, c.canceled, c.waitErrs)
	}
	if c.chaosSent > 0 {
		fmt.Fprintf(w, "chaos sent %d  wrongly accepted %d\n", c.chaosSent, c.chaosAccepted)
	}
	if c.latency.Count() > 0 {
		fmt.Fprintf(w, "job latency: mean %.3fs  p99 %.3fs  max %.3fs  (n=%d)\n",
			c.latency.Mean(), c.latency.Percentile(99), c.latency.Max(), c.latency.Count())
	}
}
