package main

import (
	"testing"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/jacobi"
)

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]cache.Policy{"wb": cache.WriteBack, "WT": cache.WriteThrough} {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]jacobi.Variant{
		"hybrid-full": jacobi.HybridFull,
		"hybrid-sync": jacobi.HybridSync,
		"pure-sm":     jacobi.PureSM,
	}
	for in, want := range cases {
		got, err := parseVariant(in)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseVariant("x"); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestParseArbiter(t *testing.T) {
	cases := map[string]bridge.ArbiterMode{
		"mux":         bridge.ArbMux,
		"single-fifo": bridge.ArbSingleFIFO,
		"dual-fifo":   bridge.ArbDualFIFO,
	}
	for in, want := range cases {
		got, err := parseArbiter(in)
		if err != nil || got != want {
			t.Errorf("parseArbiter(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseArbiter("x"); err == nil {
		t.Error("bad arbiter accepted")
	}
}
