// Command medea-sim runs one MEDEA configuration of the parallel Jacobi
// workload and prints the paper's headline metric (cycles per iteration
// after warm-up) together with network, cache and memory-node statistics.
//
// Example:
//
//	medea-sim -cores 8 -cache 16 -policy wb -n 60 -variant hybrid-full
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/jacobi"
	"repro/internal/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-sim: ")

	cores := flag.Int("cores", 4, "number of compute cores (2..15)")
	cacheKB := flag.Int("cache", 16, "L1 cache size in kB (2,4,8,16,32,64)")
	policy := flag.String("policy", "wb", "cache write policy: wb or wt")
	n := flag.Int("n", 60, "Jacobi grid edge (paper: 16, 30, 60)")
	variant := flag.String("variant", "hybrid-full", "hybrid-full | hybrid-sync | pure-sm")
	warmup := flag.Int("warmup", 1, "warm-up iterations")
	measured := flag.Int("measured", 1, "measured iterations")
	arbiter := flag.String("arbiter", "mux", "NoC arbiter: mux | single-fifo | dual-fifo")
	vcdPath := flag.String("vcd", "", "write a NoC activity waveform (VCD) to this file")
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	v, err := parseVariant(*variant)
	if err != nil {
		log.Fatal(err)
	}
	arb, err := parseArbiter(*arbiter)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig(*cores, *cacheKB, pol)
	cfg.Arbiter = arb
	spec := jacobi.Spec{N: *n, Warmup: *warmup, Measured: *measured}

	var opts []jacobi.RunOption
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts = append(opts, jacobi.WithSystemHook(func(sys *core.System) error {
			tr, err := noc.NewVCDTracer(sys.Net, f)
			if err != nil {
				return err
			}
			tr.Attach(sys.Engine)
			return nil
		}))
	}

	res, err := jacobi.Run(cfg, spec, v, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MEDEA %dx%d folded torus, %d compute cores + MPMMU\n",
		cfg.TorusW, cfg.TorusH, *cores)
	fmt.Printf("L1: %d kB %v, arbiter: %v\n", *cacheKB, pol, arb)
	fmt.Printf("workload: %dx%d Jacobi, %v, %d warm-up + %d measured iterations\n",
		*n, *n, v, *warmup, *measured)
	fmt.Printf("verified against the sequential reference: OK\n\n")
	fmt.Printf("cycles/iteration (after warm-up): %d\n", res.CyclesPerIteration)
	fmt.Printf("total cycles:                     %d\n", res.TotalCycles)
	fmt.Printf("mean L1 miss rate:                %.2f%%\n", 100*res.MissRate)
	fmt.Printf("NoC flits delivered:              %d\n", res.NoCFlits)
	fmt.Printf("mean flit latency:                %.1f cycles\n", res.AvgFlitLatency)
	fmt.Printf("deflections:                      %d\n", res.Deflections)
	fmt.Printf("MPMMU busy cycles:                %d\n", res.MPMMUBusy)
	os.Exit(0)
}

func parsePolicy(s string) (cache.Policy, error) {
	switch s {
	case "wb", "WB":
		return cache.WriteBack, nil
	case "wt", "WT":
		return cache.WriteThrough, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want wb or wt)", s)
}

// parseVariant delegates to the shared axis vocabulary in
// internal/jacobi, so every binary accepts the same spellings.
func parseVariant(s string) (jacobi.Variant, error) {
	return jacobi.ParseVariant(s)
}
