package main

import (
	"fmt"

	"repro/internal/bridge"
)

func parseArbiter(s string) (bridge.ArbiterMode, error) {
	switch s {
	case "mux":
		return bridge.ArbMux, nil
	case "single-fifo":
		return bridge.ArbSingleFIFO, nil
	case "dual-fifo":
		return bridge.ArbDualFIFO, nil
	}
	return 0, fmt.Errorf("unknown arbiter %q", s)
}
