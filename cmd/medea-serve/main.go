// Command medea-serve runs the MEDEA simulator as a hardened HTTP/JSON
// daemon: clients POST scenario files (the exact format cmd/medea-
// scenarios runs) to /v1/jobs, poll their status and fetch rendered
// results — byte-identical to the CLI's output for the same scenario.
//
// Robustness properties, all test-enforced (internal/serve):
//
//   - Bounded admission: a fixed-depth queue; when full, submissions are
//     rejected with 429 + Retry-After instead of buffering unboundedly.
//   - Per-job deadlines: -job-timeout cancels overlong jobs cooperatively
//     (the engine polls its context mid-simulation); the worker is
//     released, nothing leaks.
//   - Panic isolation: a job that panics fails alone; the daemon serves on.
//   - Graceful drain: SIGTERM/SIGINT stops admission, finishes or cancels
//     in-flight jobs within -drain-timeout, then exits 0.
//
// The daemon fronts a content-addressed result cache (-cache, default an
// in-memory LRU; -cache disk -cache-dir D persists across restarts):
// resubmitting a scenario serves its points from the store instead of
// resimulating, job status reports per-job hit counts and the run's
// Merkle ledger root, and rendered results stay byte-identical to a
// cache-off run.
//
// Examples:
//
//	medea-serve -addr 127.0.0.1:8080
//	medea-serve -addr 127.0.0.1:0 -workers 4 -queue 32 -job-timeout 5m
//	curl -s -XPOST --data-binary @examples/scenarios/smoke.json localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001/result
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-serve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until a termination signal has been
// drained or the listener fails. The bound address is printed to stdout
// first ("listening on host:port"), so scripts can use -addr with port 0
// and scrape the port.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port, printed on stdout)")
	queue := fs.Int("queue", 16, "queued-job bound; a full queue rejects submissions with 429 + Retry-After")
	workers := fs.Int("workers", 2, "jobs running concurrently")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline (0 = none); expired jobs are canceled, not leaked")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429 responses")
	maxBody := fs.Int64("max-body", 1<<20, "largest accepted request body in bytes (larger gets 413)")
	cacheBackend := fs.String("cache", resultcache.BackendMemory, "result cache backend: off | mem | disk; resubmitted scenarios become cache hits, surfaced in job status")
	cacheDir := fs.String("cache-dir", "", "directory for -cache disk (survives daemon restarts)")
	cacheBudget := fs.Int64("cache-budget", 0, "byte budget for -cache mem (0 = 64 MiB default)")
	shardWorkers := fs.Int("shard-workers", 0, "fan each accepted job out over this many shard worker processes (0 = run jobs in-process); results are byte-identical either way")
	workerCmd := fs.String("worker-cmd", "", "worker command for -shard-workers, space-separated (default: this binary re-exec'd with -worker; -cache disk gives the fleet one shared store)")
	workerMode := fs.Bool("worker", false, "serve the shard worker protocol on stdin/stdout (started by a coordinator, not by hand)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-serve [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Serves scenario simulations over HTTP/JSON (see internal/serve for\n")
		fmt.Fprintf(fs.Output(), "the API and DESIGN.md for lifecycle and backpressure semantics).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	rcache, err := resultcache.Open(*cacheBackend, *cacheDir, *cacheBudget)
	if err != nil {
		return err
	}
	if *workerMode {
		return shard.ServeWorker(context.Background(), os.Stdin, stdout, rcache)
	}
	cfg := serve.Config{
		QueueDepth:   *queue,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		RetryAfter:   *retryAfter,
		MaxBodyBytes: *maxBody,
		Cache:        rcache,
	}
	if *shardWorkers > 0 {
		runner, err := shardRunner(*shardWorkers, *workerCmd, *cacheBackend, *cacheDir, *cacheBudget)
		if err != nil {
			return err
		}
		cfg.Runner = runner
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
	}

	log.Printf("signal received; draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain jobs first — polling endpoints stay up so clients can fetch
	// the results of jobs that finish during the drain window.
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain deadline reached; in-flight jobs canceled")
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		httpSrv.Close()
	}
	log.Printf("drained; exiting")
	return nil
}

// shardRunner builds the serve.Runner that fans each accepted job out
// over n fresh worker processes. Workers run under the job's context, so
// job cancellation (timeout, client cancel, drain) kills them; fresh
// processes per job keep worker lifetime inside job lifetime — cross-job
// caching is the disk store's business (-cache disk is shared by the
// daemon and every worker it spawns). The fleet's cache counters bubble
// into the job's scope, so job status reports hits exactly as an
// in-process run would.
func shardRunner(n int, workerCmd, cacheBackend, cacheDir string, cacheBudget int64) (serve.Runner, error) {
	var argv []string
	if workerCmd != "" {
		argv = strings.Fields(workerCmd)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = []string{exe, "-worker", "-cache", cacheBackend}
		if cacheDir != "" {
			argv = append(argv, "-cache-dir", cacheDir)
		}
		if cacheBudget != 0 {
			argv = append(argv, "-cache-budget", strconv.FormatInt(cacheBudget, 10))
		}
	}
	return func(ctx context.Context, s *scenario.Scenario) ([]scenario.Result, error) {
		co := &shard.Coordinator{
			NewWorker: shard.ProcFactory(shard.ProcSpec{Command: argv}),
			Shards:    n,
			Workers:   n,
			Logf:      log.Printf,
		}
		results, stats, err := co.Run(ctx, s)
		if err != nil {
			return nil, err
		}
		s.Cache.AddExternal(stats)
		return results, nil
	}, nil
}
