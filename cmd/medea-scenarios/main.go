// Command medea-scenarios runs declarative JSON scenario files: each file
// names its workloads (the jacobi, matmul and syncbench kernels, or
// synthetic noc traffic) and sweep axes, and the runner executes the
// cross-product in parallel and prints one row per point as a table, CSV
// or JSON. Ready-to-run files live in examples/scenarios/; the format is
// documented in internal/scenario and the figure/table map in
// REPRODUCING.md.
//
// Examples:
//
//	medea-scenarios examples/scenarios/patterns-sweep.json
//	medea-scenarios examples/scenarios/kernel-ablation.json
//	medea-scenarios -format csv -out fig8.csv examples/scenarios/fig8-quick.json
//	medea-scenarios -validate examples/scenarios/*.json
//	medea-scenarios -workloads
//	medea-scenarios -patterns
//	medea-scenarios -routers
//	medea-scenarios -topologies
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-scenarios: ")
	// Ctrl-C / SIGTERM cancel the sweep cooperatively: dispatch stops,
	// in-flight simulations abort within a few thousand simulated cycles,
	// and the process exits promptly instead of finishing the sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		var canceled *par.CanceledError
		if errors.As(err, &canceled) {
			log.Fatalf("interrupted: %d of %d points had completed; partial results discarded", canceled.Done, canceled.Total)
		}
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing results to stdout; logs
// (progress, summaries) go through the log package so -format csv output
// stays machine-clean.
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run under a cancelable context (main wires Ctrl-C into it).
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-scenarios", flag.ContinueOnError)
	format := fs.String("format", "", `output format: table | csv | json (default: the scenario file's "output", else table)`)
	outPath := fs.String("out", "", "write results to this file instead of stdout (single scenario only)")
	par := fs.Int("parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS); overrides the scenario file")
	validate := fs.Bool("validate", false, "load and validate the scenario files without running them")
	cacheBackend := fs.String("cache", resultcache.BackendOff, "result cache backend: off | mem | disk (disk persists across runs; output is byte-identical either way)")
	cacheDir := fs.String("cache-dir", "", "directory for -cache disk")
	cacheBudget := fs.Int64("cache-budget", 0, "byte budget for -cache mem (0 = 64 MiB default)")
	noFFwd := fs.Bool("no-ffwd", false, "disable idle fast-forward (tick every cycle; output is byte-identical either way)")
	noFork := fs.Bool("no-fork", false, "disable warm-snapshot sharing across measure_windows (re-simulate each warmup; output is byte-identical either way)")
	workloads := fs.Bool("workloads", false, "list the available workloads and exit")
	patterns := fs.Bool("patterns", false, "list the available traffic patterns and exit")
	routers := fs.Bool("routers", false, "list the available router algorithms and exit")
	topologies := fs.Bool("topologies", false, "list the available topologies and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-scenarios [flags] scenario.json [scenario.json ...]\n\n")
		fmt.Fprintf(fs.Output(), "Runs declarative scenario files (see examples/scenarios/ and the\n")
		fmt.Fprintf(fs.Output(), "internal/scenario package docs for the format).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *noFFwd {
		sim.SetDefaultFastForward(false)
	}
	if *noFork {
		scenario.SetWindowFork(false)
	}

	switch *format {
	case "", scenario.FormatTable, scenario.FormatCSV, scenario.FormatJSON:
	default:
		// Catch the typo before hours of sweep, not after.
		return fmt.Errorf("unknown -format %q (have: %s, %s, %s)",
			*format, scenario.FormatTable, scenario.FormatCSV, scenario.FormatJSON)
	}

	if *workloads {
		fmt.Fprintf(stdout, "%s\n", strings.Join(scenario.WorkloadNames(), "\n"))
		return nil
	}
	if *patterns {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.PatternNames(), "\n"))
		return nil
	}
	if *routers {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.RouterNames(), "\n"))
		return nil
	}
	if *topologies {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.TopologyNames(), "\n"))
		return nil
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no scenario files given")
	}
	if *outPath != "" && fs.NArg() > 1 {
		return fmt.Errorf("-out only works with a single scenario file")
	}
	// One cache across every scenario on the command line, so a batch that
	// revisits points (overlapping grids, repeated files) dedups across
	// files too.
	rcache, err := resultcache.Open(*cacheBackend, *cacheDir, *cacheBudget)
	if err != nil {
		return err
	}

	for _, path := range fs.Args() {
		s, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if *validate {
			log.Printf("%s: OK (%s)", path, scenario.Summary(s))
			continue
		}
		if *par != 0 {
			s.Parallelism = *par
		}
		s.Cache = rcache.Scope() // per-file counters over the shared store
		log.Printf("running %s", scenario.Summary(s))
		results, err := scenario.RunCtx(ctx, s)
		if err != nil {
			return err
		}
		if s.Cache != nil {
			// Stderr via log, so -format csv/json stdout stays machine-clean.
			log.Printf("%s: cache %v; merkle root %s", s.Name, s.Cache.Stats(), scenario.MerkleRoot(results))
		}
		f := s.Output
		if *format != "" {
			f = *format
		}
		rendered, err := scenario.Render(results, f)
		if err != nil {
			return err
		}
		if *outPath != "" {
			if err := os.WriteFile(*outPath, []byte(rendered), 0o644); err != nil {
				return err
			}
			log.Printf("wrote %s", *outPath)
			continue
		}
		if _, err := io.WriteString(stdout, rendered); err != nil {
			return err
		}
	}
	return nil
}
