// Command medea-scenarios runs declarative JSON scenario files: each file
// names its workloads (the jacobi, matmul and syncbench kernels, or
// synthetic noc traffic) and sweep axes, and the runner executes the
// cross-product in parallel and prints one row per point as a table, CSV
// or JSON. Ready-to-run files live in examples/scenarios/; the format is
// documented in internal/scenario and the figure/table map in
// REPRODUCING.md.
//
// Examples:
//
//	medea-scenarios examples/scenarios/patterns-sweep.json
//	medea-scenarios examples/scenarios/kernel-ablation.json
//	medea-scenarios -format csv -out fig8.csv examples/scenarios/fig8-quick.json
//	medea-scenarios -validate examples/scenarios/*.json
//	medea-scenarios -workloads
//	medea-scenarios -patterns
//	medea-scenarios -routers
//	medea-scenarios -topologies
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medea-scenarios: ")
	// Ctrl-C / SIGTERM cancel the sweep cooperatively: dispatch stops,
	// in-flight simulations abort within a few thousand simulated cycles,
	// and the process exits promptly instead of finishing the sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout); err != nil {
		var canceled *par.CanceledError
		if errors.As(err, &canceled) {
			log.Fatalf("interrupted: %d of %d points had completed; partial results discarded", canceled.Done, canceled.Total)
		}
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing results to stdout; logs
// (progress, summaries) go through the log package so -format csv output
// stays machine-clean.
func run(args []string, stdout io.Writer) error {
	return runCtx(context.Background(), args, stdout)
}

// runCtx is run under a cancelable context (main wires Ctrl-C into it).
func runCtx(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("medea-scenarios", flag.ContinueOnError)
	format := fs.String("format", "", `output format: table | csv | json (default: the scenario file's "output", else table)`)
	outPath := fs.String("out", "", "write results to this file instead of stdout (single scenario only)")
	par := fs.Int("parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS); overrides the scenario file")
	validate := fs.Bool("validate", false, "load and validate the scenario files without running them")
	record := fs.String("record", "", `record the scenario's single run to this trace file (one single-point scenario; replay it with a "trace" workload scenario)`)
	cacheBackend := fs.String("cache", resultcache.BackendOff, "result cache backend: off | mem | disk (disk persists across runs; output is byte-identical either way)")
	cacheDir := fs.String("cache-dir", "", "directory for -cache disk")
	cacheBudget := fs.Int64("cache-budget", 0, "byte budget for -cache mem (0 = 64 MiB default)")
	noFFwd := fs.Bool("no-ffwd", false, "disable idle fast-forward (tick every cycle; output is byte-identical either way)")
	noFork := fs.Bool("no-fork", false, "disable warm-snapshot sharing across measure_windows (re-simulate each warmup; output is byte-identical either way)")
	shards := fs.Int("shards", 0, `split each sweep into this many shards run by worker processes and merge the rows (0 = the scenario file's "shard" section, else single-process; output is byte-identical either way)`)
	workers := fs.Int("workers", 0, "max concurrently running shard workers (0 = one per shard); each worker runs -parallelism simulations, so shards x parallelism run fleet-wide")
	workerCmd := fs.String("worker-cmd", "", "worker command for sharded runs, space-separated (default: this binary re-exec'd with -worker and the cache flags)")
	workerURLs := fs.String("worker-url", "", "comma-separated remote worker URLs (medea-scenarios -worker-listen endpoints) to shard over instead of local processes")
	workerMode := fs.Bool("worker", false, "serve the shard worker protocol on stdin/stdout (started by a coordinator, not by hand)")
	workerListen := fs.String("worker-listen", "", "serve the shard worker protocol over HTTP on this address (for -worker-url coordinators)")
	workloads := fs.Bool("workloads", false, "list the available workloads and exit")
	patterns := fs.Bool("patterns", false, "list the available traffic patterns and exit")
	routers := fs.Bool("routers", false, "list the available router algorithms and exit")
	topologies := fs.Bool("topologies", false, "list the available topologies and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: medea-scenarios [flags] scenario.json [scenario.json ...]\n\n")
		fmt.Fprintf(fs.Output(), "Runs declarative scenario files (see examples/scenarios/ and the\n")
		fmt.Fprintf(fs.Output(), "internal/scenario package docs for the format).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *noFFwd {
		sim.SetDefaultFastForward(false)
	}
	if *noFork {
		scenario.SetWindowFork(false)
	}

	switch *format {
	case "", scenario.FormatTable, scenario.FormatCSV, scenario.FormatJSON:
	default:
		// Catch the typo before hours of sweep, not after.
		return fmt.Errorf("unknown -format %q (have: %s, %s, %s)",
			*format, scenario.FormatTable, scenario.FormatCSV, scenario.FormatJSON)
	}

	if *workloads {
		fmt.Fprintf(stdout, "%s\n", strings.Join(scenario.WorkloadNames(), "\n"))
		return nil
	}
	if *patterns {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.PatternNames(), "\n"))
		return nil
	}
	if *routers {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.RouterNames(), "\n"))
		return nil
	}
	if *topologies {
		fmt.Fprintf(stdout, "%s\n", strings.Join(noc.TopologyNames(), "\n"))
		return nil
	}
	if *workerMode || *workerListen != "" {
		rcache, err := resultcache.Open(*cacheBackend, *cacheDir, *cacheBudget)
		if err != nil {
			return err
		}
		if *workerMode {
			return shard.ServeWorker(ctx, os.Stdin, stdout, rcache)
		}
		return serveWorkerHTTP(ctx, *workerListen, rcache)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no scenario files given")
	}
	if *outPath != "" && fs.NArg() > 1 {
		return fmt.Errorf("-out only works with a single scenario file")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if *record != "" {
		// A trace captures one run: recording is a single-process,
		// single-file, uncached mode of its own.
		switch {
		case fs.NArg() > 1:
			return fmt.Errorf("-record captures a single run: got %d scenario files, want one", fs.NArg())
		case *validate:
			return fmt.Errorf("-record and -validate are mutually exclusive")
		case *shards != 0:
			return fmt.Errorf("-record needs a single in-process run; drop -shards")
		}
		return recordTrace(ctx, fs.Arg(0), *record, *par, *format, *outPath, stdout)
	}
	// One cache across every scenario on the command line, so a batch that
	// revisits points (overlapping grids, repeated files) dedups across
	// files too.
	rcache, err := resultcache.Open(*cacheBackend, *cacheDir, *cacheBudget)
	if err != nil {
		return err
	}
	newWorker, err := workerFactory(*workerURLs, *workerCmd, *cacheBackend, *cacheDir, *cacheBudget, *noFFwd, *noFork)
	if err != nil {
		return err
	}

	for _, path := range fs.Args() {
		s, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if *validate {
			log.Printf("%s: OK (%s)", path, scenario.Summary(s))
			continue
		}
		if *par != 0 {
			s.Parallelism = *par
		}
		s.Cache = rcache.Scope() // per-file counters over the shared store
		log.Printf("running %s", scenario.Summary(s))

		// -shards on the command line wins; 0 falls back to the scenario
		// file's shard section; no section means single-process.
		nShards, nWorkers := *shards, *workers
		if nShards == 0 && s.Shard != nil {
			nShards = s.Shard.Shards
			if nWorkers == 0 {
				nWorkers = s.Shard.Workers
			}
		}

		var results []scenario.Result
		if nShards > 0 {
			co := &shard.Coordinator{
				NewWorker:   newWorker,
				Shards:      nShards,
				Workers:     nWorkers,
				Parallelism: *par,
				Logf:        log.Printf,
			}
			merged, stats, err := co.Run(ctx, s)
			if err != nil {
				return err
			}
			// Bubble the fleet's cache counters into this file's scope (and
			// the shared store's), as a single-process run would have.
			s.Cache.AddExternal(stats)
			results = merged
			// Stderr via log, so -format csv/json stdout stays machine-clean.
			// The merged root is always logged for sharded runs: it is the
			// figure to compare against a single-process run's root.
			log.Printf("%s: merged %d shards; cache %v; merkle root %s", s.Name, nShards, s.Cache.Stats(), scenario.MerkleRoot(results))
		} else {
			r, err := scenario.RunCtx(ctx, s)
			if err != nil {
				return err
			}
			results = r
			if s.Cache != nil {
				// Stderr via log, so -format csv/json stdout stays machine-clean.
				log.Printf("%s: cache %v; merkle root %s", s.Name, s.Cache.Stats(), scenario.MerkleRoot(results))
			}
		}
		f := s.Output
		if *format != "" {
			f = *format
		}
		rendered, err := scenario.Render(results, f)
		if err != nil {
			return err
		}
		if *outPath != "" {
			if err := os.WriteFile(*outPath, []byte(rendered), 0o644); err != nil {
				return err
			}
			log.Printf("wrote %s", *outPath)
			continue
		}
		if _, err := io.WriteString(stdout, rendered); err != nil {
			return err
		}
	}
	return nil
}

// recordTrace runs one single-point scenario with a trace recorder
// attached, saves the capture, and renders the source run's rows so the
// logged merkle root can be compared against a later replay's.
func recordTrace(ctx context.Context, path, out string, parallelism int, format, outPath string, stdout io.Writer) error {
	s, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if parallelism != 0 {
		s.Parallelism = parallelism
	}
	log.Printf("recording %s", scenario.Summary(s))
	t, results, err := scenario.RecordCtx(ctx, s)
	if err != nil {
		return err
	}
	if err := t.Save(out); err != nil {
		return err
	}
	// The root is the replay contract: a same-fabric replay of this trace
	// must merge to the same merkle root (give the replay scenario the
	// same "name").
	log.Printf("%s: recorded %d events to %s (sha256 %s); merkle root %s",
		s.Name, len(t.Events), out, t.Hash(), scenario.MerkleRoot(results))
	f := s.Output
	if format != "" {
		f = format
	}
	rendered, err := scenario.Render(results, f)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(rendered), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", outPath)
		return nil
	}
	_, err = io.WriteString(stdout, rendered)
	return err
}

// workerFactory builds the coordinator's worker source: remote HTTP
// workers when -worker-url is set, else local processes running
// -worker-cmd (default: this binary re-exec'd in -worker mode with the
// run's cache and determinism flags, so -cache disk gives the fleet one
// shared store and cross-process dedup).
func workerFactory(urls, cmd, cacheBackend, cacheDir string, cacheBudget int64, noFFwd, noFork bool) (func(context.Context) (shard.Worker, error), error) {
	if urls != "" {
		return shard.HTTPFactory(strings.Split(urls, ",")), nil
	}
	var argv []string
	if cmd != "" {
		argv = strings.Fields(cmd)
	} else {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = []string{exe, "-worker", "-cache", cacheBackend}
		if cacheDir != "" {
			argv = append(argv, "-cache-dir", cacheDir)
		}
		if cacheBudget != 0 {
			argv = append(argv, "-cache-budget", strconv.FormatInt(cacheBudget, 10))
		}
		if noFFwd {
			argv = append(argv, "-no-ffwd")
		}
		if noFork {
			argv = append(argv, "-no-fork")
		}
	}
	return shard.ProcFactory(shard.ProcSpec{Command: argv}), nil
}

// serveWorkerHTTP serves the shard worker protocol over HTTP until the
// context is canceled (-worker-listen).
func serveWorkerHTTP(ctx context.Context, addr string, rcache *resultcache.Cache) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("worker listening on %s", ln.Addr())
	srv := &http.Server{Handler: shard.Handler(rcache)}
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
