package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles as the worker entrypoint for the sharded CLI tests:
// the coordinator's default worker command re-execs this test binary
// (os.Executable) with -worker, and MEDEA_WORKER_MAIN routes that
// invocation into the real CLI instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("MEDEA_WORKER_MAIN") == "1" {
		if err := run(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestShardedCLIMatchesSingleProcess: -shards N through the full CLI
// (worker processes included) must produce byte-identical stdout to the
// single-process run.
func TestShardedCLIMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	t.Setenv("MEDEA_WORKER_MAIN", "1")
	var direct strings.Builder
	if err := run([]string{"-format", "csv", "../../examples/scenarios/smoke.json"}, &direct); err != nil {
		t.Fatal(err)
	}
	var sharded strings.Builder
	if err := run([]string{"-format", "csv", "-shards", "3", "../../examples/scenarios/smoke.json"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if sharded.String() != direct.String() {
		t.Errorf("sharded CSV diverges:\n--- sharded ---\n%s--- direct ---\n%s", sharded.String(), direct.String())
	}
}

// TestShardSectionDrivesSharding: a scenario file's "shard" section must
// fan the run out with no flags, and the output must still match the
// same sweep without the section.
func TestShardSectionDrivesSharding(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	t.Setenv("MEDEA_WORKER_MAIN", "1")
	base, err := os.ReadFile("../../examples/scenarios/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	// Splice a shard section into the example (every example scenario is
	// a single JSON object).
	trimmed := strings.TrimRight(strings.TrimSpace(string(base)), "}")
	shardy := trimmed + `, "shard": {"shards": 2, "workers": 2}}`
	path := filepath.Join(t.TempDir(), "smoke-sharded.json")
	if err := os.WriteFile(path, []byte(shardy), 0o644); err != nil {
		t.Fatal(err)
	}
	var direct strings.Builder
	if err := run([]string{"-format", "csv", "../../examples/scenarios/smoke.json"}, &direct); err != nil {
		t.Fatal(err)
	}
	var sharded strings.Builder
	if err := run([]string{"-format", "csv", path}, &sharded); err != nil {
		t.Fatal(err)
	}
	if sharded.String() != direct.String() {
		t.Errorf("shard-section CSV diverges:\n--- sharded ---\n%s--- direct ---\n%s", sharded.String(), direct.String())
	}
}

func TestShardFlagValidation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "-1", "../../examples/scenarios/smoke.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Errorf("-shards -1 = %v, want a flag error", err)
	}
}
