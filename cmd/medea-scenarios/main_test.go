package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/noc"
)

// TestGoldenFig8ViaCLI is the acceptance check for the scenario runner:
// the shipped fig8-quick.json, run through the CLI in CSV mode, must
// reproduce the Quick-fidelity Figure 8 sweep byte-identically.
func TestGoldenFig8ViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full Fig8 sweeps")
	}
	var out strings.Builder
	if err := run([]string{"-format", "csv", "../../examples/scenarios/fig8-quick.json"}, &out); err != nil {
		t.Fatal(err)
	}
	pts, err := dse.Sweep(dse.Fig8Options(dse.Quick))
	if err != nil {
		t.Fatal(err)
	}
	if want := dse.PointsCSV(pts); out.String() != want {
		t.Errorf("CLI output diverges from dse.Fig8(Quick):\n--- cli ---\n%s--- dse ---\n%s",
			out.String(), want)
	}
}

// TestValidateAllExamples keeps every shipped scenario file loadable.
func TestValidateAllExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(files) < 4 {
		t.Fatalf("expected at least 4 example scenarios, got %v (%v)", files, err)
	}
	var out strings.Builder
	if err := run(append([]string{"-validate"}, files...), &out); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeScenarioRuns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"../../examples/scenarios/smoke.json"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pattern", "uniform", "tornado"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPatternsFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-patterns"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.PatternNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-patterns output missing %q", name)
		}
	}
}

func TestRoutersFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-routers"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.RouterNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-routers output missing %q", name)
		}
	}
}

func TestTopologiesFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topologies"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.TopologyNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-topologies output missing %q", name)
		}
	}
}

func TestOutFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.csv")
	var out strings.Builder
	if err := run([]string{"-format", "csv", "-out", path, "../../examples/scenarios/smoke.json"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pattern,rate,seed,") {
		t.Errorf("unexpected CSV: %s", data)
	}
	if out.Len() != 0 {
		t.Errorf("results leaked to stdout with -out: %q", out.String())
	}
}

func TestCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no arguments should fail")
	}
	if err := run([]string{"no-such-file.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-out", "x.csv", "a.json", "b.json"}, &out); err == nil {
		t.Error("-out with two scenarios should fail")
	}
	// A bad -format must be rejected before any sweep runs.
	if err := run([]string{"-format", "xml", "../../examples/scenarios/smoke.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-format") {
		t.Errorf("bad -format not rejected up front: %v", err)
	}
}
