package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/noc"
	"repro/internal/scenario"
)

// TestGoldenFig8ViaCLI is the acceptance check for the scenario runner:
// the shipped fig8-quick.json, run through the CLI in CSV mode, must
// reproduce the Quick-fidelity Figure 8 sweep byte-identically.
func TestGoldenFig8ViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full Fig8 sweeps")
	}
	var out strings.Builder
	if err := run([]string{"-format", "csv", "../../examples/scenarios/fig8-quick.json"}, &out); err != nil {
		t.Fatal(err)
	}
	pts, err := dse.Sweep(dse.Fig8Options(dse.Quick))
	if err != nil {
		t.Fatal(err)
	}
	if want := dse.PointsCSV(pts); out.String() != want {
		t.Errorf("CLI output diverges from dse.Fig8(Quick):\n--- cli ---\n%s--- dse ---\n%s",
			out.String(), want)
	}
}

// TestValidateAllExamples keeps every shipped scenario file loadable.
func TestValidateAllExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(files) < 4 {
		t.Fatalf("expected at least 4 example scenarios, got %v (%v)", files, err)
	}
	var out strings.Builder
	if err := run(append([]string{"-validate"}, files...), &out); err != nil {
		t.Fatal(err)
	}
}

func TestSmokeScenarioRuns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"../../examples/scenarios/smoke.json"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pattern", "uniform", "tornado"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPatternsFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-patterns"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.PatternNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-patterns output missing %q", name)
		}
	}
}

func TestWorkloadsFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workloads"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.WorkloadNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-workloads output missing %q", name)
		}
	}
}

// TestKernelScenarioViaCLI runs a small multi-kernel scenario end to end
// through the CLI: one block per workload, each rendered by its schema.
func TestKernelScenarioViaCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kernels.json")
	if err := os.WriteFile(path, []byte(`{
		"workloads": ["matmul", "syncbench"],
		"kernel": {"n": 8, "cores": [2], "cache_kb": [4],
		           "variants": ["hybrid-full", "pure-sm"], "rounds": 3}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total-cycles", "cycles/round", "pure-sm"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("kernel scenario output missing %q:\n%s", want, out.String())
		}
	}
}

// TestInvalidKernelCombosViaCLI: invalid workload/variant combinations
// must fail at load time with actionable messages, before any sweep runs.
func TestInvalidKernelCombosViaCLI(t *testing.T) {
	cases := []struct {
		name, json, wantSub string
	}{
		{"unknown workload", `{"workload": "fft", "kernel": {"n": 8, "cores": [2], "cache_kb": [4]}}`, "unknown workload"},
		{"noc in workloads", `{"workloads": ["jacobi", "noc-synthetic"], "kernel": {"n": 8, "cores": [2], "cache_kb": [4]}}`, "kernel workloads"},
		{"syncbench hybrid-sync", `{"workload": "syncbench", "kernel": {"cores": [2], "cache_kb": [4], "variants": ["hybrid-sync"]}}`, "hybrid-sync"},
		{"unknown variant", `{"workload": "matmul", "kernel": {"n": 8, "cores": [2], "cache_kb": [4], "variant": "mpi"}}`, "unknown variant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(path, []byte(c.json), 0o644); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			err := run([]string{path}, &out)
			if err == nil {
				t.Fatalf("invalid scenario accepted:\n%s", c.json)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestRoutersFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-routers"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.RouterNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-routers output missing %q", name)
		}
	}
}

func TestTopologiesFlagListsEverything(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topologies"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range noc.TopologyNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-topologies output missing %q", name)
		}
	}
}

func TestOutFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.csv")
	var out strings.Builder
	if err := run([]string{"-format", "csv", "-out", path, "../../examples/scenarios/smoke.json"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "pattern,rate,seed,") {
		t.Errorf("unexpected CSV: %s", data)
	}
	if out.Len() != 0 {
		t.Errorf("results leaked to stdout with -out: %q", out.String())
	}
}

func TestCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no arguments should fail")
	}
	if err := run([]string{"no-such-file.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-out", "x.csv", "a.json", "b.json"}, &out); err == nil {
		t.Error("-out with two scenarios should fail")
	}
	// A bad -format must be rejected before any sweep runs.
	if err := run([]string{"-format", "xml", "../../examples/scenarios/smoke.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-format") {
		t.Errorf("bad -format not rejected up front: %v", err)
	}
}
