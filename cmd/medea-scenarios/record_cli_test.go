package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeTestTrace records nothing but writes a structurally valid trace
// file for validation tests that only need the file to exist and decode.
func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	tr := trace.New(trace.Header{
		Width: 4, Height: 4,
		Topology: "torus", Router: "deflection",
		Pattern: "uniform", Rate: 0.1, Seed: 1,
		Measure: 500,
	})
	tr.RecordInjection(0, 0, 5, 0)
	tr.RecordInjection(3, 2, 7, 3)
	path := filepath.Join(dir, "test.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestInvalidTraceServiceCombosViaCLI: the trace and service workloads
// reject axes that cannot apply to them, at load time, with the fix named
// — mirroring TestInvalidKernelCombosViaCLI for the new workload kinds.
func TestInvalidTraceServiceCombosViaCLI(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeTestTrace(t, dir)
	cases := []struct {
		name, json, wantSub string
	}{
		{
			"trace with noc patterns/rates axes",
			`{"workload": "trace", "trace": {"file": "` + tracePath + `"},
			  "noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1]}}`,
			`the "noc" patterns/rates axes cannot apply`,
		},
		{
			"trace with measure_windows",
			`{"workload": "trace", "trace": {"file": "` + tracePath + `"},
			  "noc": {"width": 4, "height": 4, "measure_windows": [300, 300]}}`,
			"a replay's horizon is fixed by the recording",
		},
		{
			"trace with seeds",
			`{"workload": "trace", "trace": {"file": "` + tracePath + `"}, "seeds": [1, 2]}`,
			"a trace replay is fully deterministic",
		},
		{
			"trace without trace section",
			`{"workload": "trace"}`,
			`"trace"`,
		},
		{
			"trace file missing",
			`{"workload": "trace", "trace": {"file": ""}}`,
			"record one with medea-scenarios -record or medea-noc -record",
		},
		{
			"service with every endpoint a server",
			`{"workload": "service",
			  "service": {"width": 4, "height": 4, "servers": 16, "arrival_rates": [0.05]}}`,
			"must leave at least one client; use at most 15 servers",
		},
		{
			"service with more servers than endpoints",
			`{"workload": "service",
			  "service": {"width": 4, "height": 4, "servers": 20, "arrival_rates": [0.05]}}`,
			"must leave at least one client",
		},
		{
			"service with trace section",
			`{"workload": "service",
			  "service": {"width": 4, "height": 4, "servers": 2, "arrival_rates": [0.05]},
			  "trace": {"file": "` + tracePath + `"}}`,
			`"trace"`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(path, []byte(c.json), 0o644); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			err := run([]string{path}, &out)
			if err == nil {
				t.Fatalf("invalid scenario accepted:\n%s", c.json)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestRecordFlagValidation: -record is a single-run mode; conflicting
// flags and multi-point scenarios are rejected before anything executes.
func TestRecordFlagValidation(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.json")
	if err := os.WriteFile(single, []byte(`{
		"name": "rec", "workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4, "patterns": ["uniform"], "rates": [0.1],
		        "measure_cycles": 300}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	multi := filepath.Join(dir, "multi.json")
	if err := os.WriteFile(multi, []byte(`{
		"name": "multi", "workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4, "patterns": ["uniform", "tornado"], "rates": [0.1],
		        "measure_cycles": 300}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.trace")
	bad := [][]string{
		{"-record", out, "-validate", single},    // record xor validate
		{"-record", out, "-shards", "2", single}, // record is in-process
		{"-record", out, single, single},         // one file only
		{"-record", out, multi},                  // one point only
	}
	for _, args := range bad {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
}

// TestRecordReplayViaCLI: the CLI loop closes — record a single-point
// scenario, replay the capture through a trace scenario with the same
// name, and the rendered output is byte-identical.
func TestRecordReplayViaCLI(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace")
	recScenario := filepath.Join(dir, "rec.json")
	if err := os.WriteFile(recScenario, []byte(`{
		"name": "cli-roundtrip", "workload": "noc-synthetic",
		"noc": {"width": 4, "height": 4, "patterns": ["tornado"], "rates": [0.15],
		        "warmup_cycles": 50, "measure_cycles": 600},
		"seeds": [3], "output": "csv"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var src strings.Builder
	if err := run([]string{"-record", tracePath, recScenario}, &src); err != nil {
		t.Fatal(err)
	}
	replayScenario := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(replayScenario, []byte(`{
		"name": "cli-roundtrip", "workload": "trace",
		"trace": {"file": "run.trace"},
		"output": "csv"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	if err := run([]string{"-cache", "mem", replayScenario}, &rep); err != nil {
		t.Fatal(err)
	}
	if src.String() != rep.String() {
		t.Errorf("replay output differs from the recorded run:\nsrc:\n%srep:\n%s", src.String(), rep.String())
	}
}
