#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the simulation-as-a-service path.
#
# Starts medea-serve on an ephemeral port, replays a scenario through
# medea-loadgen -once and asserts the served bytes are identical to what
# cmd/medea-scenarios prints for the same file, throws a short chaos
# burst (malformed / oversized / disconnecting submissions) at the
# daemon, then sends SIGTERM and requires a clean graceful drain:
# exit status 0 within the drain budget.
#
# Usage: scripts/serve_smoke.sh [scenario.json]   (default: fig8-quick)
set -euo pipefail
cd "$(dirname "$0")/.."

scenario=${1:-examples/scenarios/fig8-quick.json}
workdir=$(mktemp -d)
server_pid=
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/medea-serve" ./cmd/medea-serve
go build -o "$workdir/medea-loadgen" ./cmd/medea-loadgen
go build -o "$workdir/medea-scenarios" ./cmd/medea-scenarios

"$workdir/medea-serve" -addr 127.0.0.1:0 -workers 2 -drain-timeout 60s \
    >"$workdir/serve.out" 2>"$workdir/serve.log" &
server_pid=$!

# The daemon prints "listening on host:port" to stdout once bound; scrape
# the ephemeral port from it.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$workdir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "medea-serve never reported its address" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
echo "medea-serve up on $addr"

# Determinism: the served result must match the CLI byte-for-byte.
"$workdir/medea-scenarios" "$scenario" >"$workdir/cli.out"
"$workdir/medea-loadgen" -addr "$addr" -scenario "$scenario" -once \
    >"$workdir/served.out" 2>"$workdir/loadgen1.log"
if ! cmp "$workdir/cli.out" "$workdir/served.out"; then
    echo "served output differs from the CLI for $scenario" >&2
    exit 1
fi
echo "served output byte-identical to the CLI for $scenario"

# Result cache: resubmitting the same scenario must be a pure cache hit
# (medea-serve defaults to -cache mem), byte-identical to the first run.
"$workdir/medea-loadgen" -addr "$addr" -scenario "$scenario" -once \
    >"$workdir/served2.out" 2>"$workdir/loadgen2.log"
if ! cmp "$workdir/served.out" "$workdir/served2.out"; then
    echo "resubmitted output differs from the first run for $scenario" >&2
    exit 1
fi
if ! grep -q 'cache-hit=true' "$workdir/loadgen2.log"; then
    echo "resubmit was not a cache hit:" >&2
    cat "$workdir/loadgen2.log" >&2
    exit 1
fi
root1=$(sed -n 's/.*merkle-root=//p' "$workdir/loadgen1.log")
root2=$(sed -n 's/.*merkle-root=//p' "$workdir/loadgen2.log")
if [ -z "$root1" ] || [ "$root1" != "$root2" ]; then
    echo "merkle roots differ across resubmission: '$root1' vs '$root2'" >&2
    exit 1
fi
echo "resubmission served from cache (merkle root $root1)"

# Input hardening: a closed-loop burst with ~30% hostile submissions.
# loadgen fails (and so does this script) if the daemon stops answering.
"$workdir/medea-loadgen" -addr "$addr" \
    -scenario examples/scenarios/smoke.json -n 12 -concurrency 4 -chaos -seed 7

# Graceful drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=
if [ "$status" -ne 0 ]; then
    echo "medea-serve exited $status on SIGTERM (want 0)" >&2
    cat "$workdir/serve.log" >&2
    exit 1
fi
echo "graceful drain OK (exit 0)"
echo "serve smoke OK"
